// Durable work-lease tests (DESIGN.md section 13): carve geometry, claim
// record framing, and the LeaseStore claim/renew/reclaim protocol under an
// injected clock — expiry, fencing and torn-write recovery are all stepped
// through deterministically, without sleeping out real TTLs.
#include "fuzz/lease.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "fuzz/telemetry.h"

namespace swarmfuzz::fuzz {
namespace {

// Fresh per-test service directory under the gtest temp root.
std::string service_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path{::testing::TempDir()} / ("swarmfuzz_lease_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// True when `dir` holds at least one reclaimed (renamed-aside) claim file
// for `lease_id`.
bool has_dead_claim(const std::string& dir, int lease_id) {
  const std::string prefix = "lease-" + std::to_string(lease_id) + ".claim.dead.";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lease geometry.

TEST(CarveLeases, PartitionsMissionsContiguously) {
  // 10 missions over 4 leases: the first 10 % 4 = 2 ranges are one longer.
  const auto leases = carve_leases(10, 4);
  ASSERT_EQ(leases.size(), 4u);
  int expected_begin = 0;
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(leases[k].lease_id, k);
    EXPECT_EQ(leases[k].begin, expected_begin);
    EXPECT_EQ(leases[k].size(), k < 2 ? 3 : 2);
    expected_begin = leases[k].end;
  }
  EXPECT_EQ(leases.back().end, 10);  // every index covered exactly once
}

TEST(CarveLeases, ClampsLeaseCount) {
  // More leases than missions: one mission per lease, never an empty range.
  const auto over = carve_leases(3, 8);
  ASSERT_EQ(over.size(), 3u);
  for (const LeaseRange& lease : over) EXPECT_EQ(lease.size(), 1);
  // Degenerate lease counts clamp up to a single whole-campaign lease.
  const auto under = carve_leases(5, 0);
  ASSERT_EQ(under.size(), 1u);
  EXPECT_EQ(under[0].begin, 0);
  EXPECT_EQ(under[0].end, 5);
  EXPECT_EQ(carve_leases(5, -3).size(), 1u);
}

TEST(CarveLeases, RejectsEmptyCampaign) {
  EXPECT_THROW((void)carve_leases(0, 2), std::invalid_argument);
  EXPECT_THROW((void)carve_leases(-1, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Claim record framing.

TEST(LeaseClaimRecord, RoundTripsThroughJsonl) {
  LeaseClaimRecord record;
  record.lease_id = 7;
  record.owner = "shard-1234";
  record.expires_at_ms = 9007199254740993;  // above the 53-bit double bound
  const std::string line = to_jsonl(record);
  const LeaseClaimRecord parsed = lease_claim_from_json(line);
  EXPECT_EQ(parsed.schema_version, 1);
  EXPECT_EQ(parsed.lease_id, 7);
  EXPECT_EQ(parsed.owner, "shard-1234");
  EXPECT_EQ(parsed.expires_at_ms, 9007199254740993);
}

TEST(LeaseClaimRecord, CrcFramingRejectsTampering) {
  LeaseClaimRecord record;
  record.lease_id = 2;
  record.owner = "a";
  record.expires_at_ms = 1000;
  std::string line = to_jsonl(record);
  // Flip the lease id inside the framed line: the CRC must catch it.
  const auto pos = line.find("\"lease\":2");
  ASSERT_NE(pos, std::string::npos);
  line[pos + 8] = '3';
  EXPECT_THROW((void)lease_claim_from_json(line), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LeaseStore protocol, driven by a fake clock.

TEST(LeaseStore, ClaimIsReentrantForItsOwner) {
  const std::string dir = service_dir("reentry");
  std::int64_t now = 0;
  LeaseStore store(dir, 1000, "alice", [&now] { return now; });
  ASSERT_TRUE(store.try_claim(0));
  EXPECT_TRUE(store.holds(0));
  // Claiming a lease we already hold is a no-op success, not a conflict.
  EXPECT_TRUE(store.try_claim(0));
  EXPECT_TRUE(std::filesystem::exists(store.claim_path(0)));
}

TEST(LeaseStore, RejectsDuplicateClaimWhileUnexpired) {
  const std::string dir = service_dir("duplicate");
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore alice(dir, 1000, "alice", clock);
  LeaseStore bob(dir, 1000, "bob", clock);
  ASSERT_TRUE(alice.try_claim(0));
  now += 500;  // within alice's TTL
  EXPECT_FALSE(bob.try_claim(0));
  EXPECT_FALSE(bob.holds(0));
  EXPECT_TRUE(alice.holds(0));
  EXPECT_FALSE(has_dead_claim(dir, 0));  // rejection never touches the file
}

TEST(LeaseStore, ExpiredClaimIsReclaimedByRename) {
  const std::string dir = service_dir("expiry");
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore alice(dir, 1000, "alice", clock);
  LeaseStore bob(dir, 1000, "bob", clock);
  ASSERT_TRUE(alice.try_claim(0));
  now += 1001;  // alice's claim lapses (she was presumed dead)
  EXPECT_FALSE(alice.holds(0));
  EXPECT_TRUE(bob.try_claim(0));
  EXPECT_TRUE(bob.holds(0));
  // The dead claim was moved aside, not deleted — it stays for post-mortems.
  EXPECT_TRUE(has_dead_claim(dir, 0));
}

TEST(LeaseStore, RenewExtendsExpiry) {
  const std::string dir = service_dir("renew");
  std::int64_t now = 0;
  LeaseStore store(dir, 1000, "alice", [&now] { return now; });
  ASSERT_TRUE(store.try_claim(0));
  now += 900;
  ASSERT_TRUE(store.renew(0));
  now += 900;  // past the original expiry (1000), within the renewed one
  EXPECT_TRUE(store.holds(0));
  now += 200;  // past the renewed expiry too
  EXPECT_FALSE(store.holds(0));
}

TEST(LeaseStore, RenewIsFencedAfterReclaim) {
  const std::string dir = service_dir("fencing");
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore alice(dir, 1000, "alice", clock);
  LeaseStore bob(dir, 1000, "bob", clock);
  ASSERT_TRUE(alice.try_claim(0));
  now += 1001;
  ASSERT_TRUE(bob.try_claim(0));  // reclaims the expired lease
  // Alice (stalled, now resumed) must see the fence and must not write a
  // renewal that would contest bob's legitimate claim.
  EXPECT_FALSE(alice.renew(0));
  EXPECT_FALSE(alice.holds(0));
  EXPECT_TRUE(bob.holds(0));
  EXPECT_TRUE(bob.renew(0));
}

TEST(LeaseStore, DoneMarkerBlocksAllClaims) {
  const std::string dir = service_dir("done");
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore alice(dir, 1000, "alice", clock);
  LeaseStore bob(dir, 1000, "bob", clock);
  ASSERT_TRUE(alice.try_claim(0));
  alice.mark_done(0);
  EXPECT_TRUE(alice.is_done(0));
  EXPECT_TRUE(bob.is_done(0));
  // A finished lease is never claimable again, expired claim or not.
  now += 5000;
  EXPECT_FALSE(alice.try_claim(0));
  EXPECT_FALSE(bob.try_claim(0));
}

TEST(LeaseStore, TornRenewalFallsBackToLastValidRecord) {
  const std::string dir = service_dir("torn_renew");
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore alice(dir, 1000, "alice", clock);
  LeaseStore bob(dir, 1000, "bob", clock);
  ASSERT_TRUE(alice.try_claim(0));
  // SIGKILL mid-renew: an unterminated fragment lands after the valid claim.
  append_jsonl_line(dir + "/lease-0.claim", R"({"v":1,"lease":0,"owner":"al)");
  // The torn line is ignored; alice's original claim still governs.
  EXPECT_TRUE(alice.holds(0));
  EXPECT_FALSE(bob.try_claim(0));
  now += 1001;  // ...and it still expires on its own schedule.
  EXPECT_TRUE(bob.try_claim(0));
}

TEST(LeaseStore, TornOnlyClaimFileIsReclaimable) {
  const std::string dir = service_dir("torn_claim");
  std::int64_t now = 0;
  // A claimant that died before its first record landed: the file exists but
  // holds no valid record — a dead claimant, immediately reclaimable.
  append_jsonl_line(dir + "/lease-0.claim", "garbage, not json");
  LeaseStore bob(dir, 1000, "bob", [&now] { return now; });
  EXPECT_TRUE(bob.try_claim(0));
  EXPECT_TRUE(bob.holds(0));
  EXPECT_TRUE(has_dead_claim(dir, 0));
}

TEST(LeaseStore, ShardTelemetryPathNamesLease) {
  EXPECT_EQ(shard_telemetry_path("/tmp/svc", 3), "/tmp/svc/shard-3.jsonl");
}

TEST(LeaseStore, RejectsDegenerateConstruction) {
  EXPECT_THROW(LeaseStore("d", 0, "alice"), std::invalid_argument);
  EXPECT_THROW(LeaseStore("d", 1000, ""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Clock skew. Each worker's LeaseStore reads its own clock; the protocol
// must keep its single-winner guarantee when those clocks disagree, because
// claim expiry is judged by the *reader's* clock against the *writer's*
// recorded expires_at_ms.

TEST(LeaseStoreClockSkew, ReclaimerAheadOfOwnerStealsEarlyButFencesCleanly) {
  const std::string dir = service_dir("skew_ahead");
  std::int64_t owner_now = 0;
  std::int64_t reclaimer_now = 0;
  LeaseStore owner(dir, 1000, "owner", [&owner_now] { return owner_now; });
  LeaseStore reclaimer(dir, 1000, "reclaimer",
                       [&reclaimer_now] { return reclaimer_now; });
  ASSERT_TRUE(owner.try_claim(0));
  // The reclaimer's clock runs 1.5 TTLs fast: it judges the claim expired
  // while the owner (by its own clock) believes the claim is fresh. The
  // steal succeeds — that is the designed failure of skewed clocks — but
  // there is still exactly one winner, and the old owner is fenced on its
  // very next renewal instead of writing into a contested range.
  reclaimer_now = 1500;
  EXPECT_TRUE(reclaimer.try_claim(0));
  EXPECT_FALSE(owner.renew(0));  // fenced: latest valid record is not ours
  EXPECT_FALSE(owner.holds(0));
  EXPECT_TRUE(reclaimer.holds(0));
}

TEST(LeaseStoreClockSkew, ReclaimerBehindOwnerNeverStealsAValidClaim) {
  const std::string dir = service_dir("skew_behind");
  std::int64_t owner_now = 10000;
  std::int64_t reclaimer_now = 0;  // 10 s behind the owner
  LeaseStore owner(dir, 1000, "owner", [&owner_now] { return owner_now; });
  LeaseStore reclaimer(dir, 1000, "reclaimer",
                       [&reclaimer_now] { return reclaimer_now; });
  ASSERT_TRUE(owner.try_claim(0));  // expires at owner-time 11000
  // By the slow clock the claim looks far from expiry; by any clock behind
  // the writer's it can only look *more* valid. No steal until the slow
  // clock itself passes the recorded expiry.
  reclaimer_now = 10999;
  EXPECT_FALSE(reclaimer.try_claim(0));
  EXPECT_TRUE(owner.renew(0));  // owner is undisturbed
  reclaimer_now = 13000;        // now past even the renewed expiry
  EXPECT_TRUE(reclaimer.try_claim(0));
  EXPECT_FALSE(owner.renew(0));
}

TEST(LeaseStoreClockSkew, RacingReclaimersWithSkewedClocksHaveOneWinner) {
  const std::string dir = service_dir("skew_race");
  std::int64_t dead_now = 0;
  LeaseStore dead(dir, 1000, "dead", [&dead_now] { return dead_now; });
  ASSERT_TRUE(dead.try_claim(0));
  // Two reclaimers, both past expiry but with different clocks, race the
  // rename-aside + exclusive-create. Exactly one must end up holding.
  std::int64_t fast_now = 5000;
  std::int64_t slow_now = 1500;
  LeaseStore fast(dir, 1000, "fast", [&fast_now] { return fast_now; });
  LeaseStore slow(dir, 1000, "slow", [&slow_now] { return slow_now; });
  const bool fast_won = fast.try_claim(0);
  const bool slow_won = slow.try_claim(0);
  EXPECT_TRUE(fast_won);   // first to act reclaims
  EXPECT_FALSE(slow_won);  // second finds a fresh, valid claim
  EXPECT_TRUE(fast.holds(0));
  EXPECT_FALSE(slow.holds(0));
}

// ---------------------------------------------------------------------------
// Recarve ledger framing and the lease table.

TEST(RecarveRecord, RoundTripsThroughJsonl) {
  RecarveRecord record;
  record.parent = 3;
  record.subs = {LeaseRange{.lease_id = 8, .begin = 10, .end = 14},
                 LeaseRange{.lease_id = 9, .begin = 14, .end = 18}};
  const RecarveRecord parsed = recarve_record_from_json(to_jsonl(record));
  EXPECT_EQ(parsed.schema_version, 1);
  EXPECT_EQ(parsed.parent, 3);
  ASSERT_EQ(parsed.subs.size(), 2u);
  EXPECT_EQ(parsed.subs[0].lease_id, 8);
  EXPECT_EQ(parsed.subs[0].begin, 10);
  EXPECT_EQ(parsed.subs[0].end, 14);
  EXPECT_EQ(parsed.subs[1].lease_id, 9);
}

TEST(RecarveRecord, ParentlessAndEmptyFormsRoundTrip) {
  RecarveRecord orphan;  // resume_holes' parentless form
  orphan.parent = -1;
  orphan.subs = {LeaseRange{.lease_id = 5, .begin = 2, .end = 4}};
  EXPECT_EQ(recarve_record_from_json(to_jsonl(orphan)).parent, -1);

  RecarveRecord empty;  // fully-recorded parent retired with no successor
  empty.parent = 2;
  const RecarveRecord parsed = recarve_record_from_json(to_jsonl(empty));
  EXPECT_EQ(parsed.parent, 2);
  EXPECT_TRUE(parsed.subs.empty());
}

TEST(RecarveLedger, TornFinalLineIsSkipped) {
  const std::string dir = service_dir("ledger_torn");
  RecarveRecord record;
  record.parent = 0;
  record.subs = {LeaseRange{.lease_id = 2, .begin = 3, .end = 6}};
  append_jsonl_line(recarve_ledger_path(dir), to_jsonl(record));
  {
    // Coordinator died mid-append: an unterminated fragment follows.
    std::FILE* file = std::fopen(recarve_ledger_path(dir).c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const char torn[] = R"({"v":1,"parent":1,"su)";
    std::fwrite(torn, 1, sizeof torn - 1, file);
    std::fclose(file);
  }
  const auto records = load_recarve_ledger(recarve_ledger_path(dir));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].parent, 0);
  // A corrupt *complete* line is real corruption, not a crash signature.
  append_jsonl_line(recarve_ledger_path(dir), "garbage, not json");
  EXPECT_THROW((void)load_recarve_ledger(recarve_ledger_path(dir)),
               std::runtime_error);
}

TEST(LeaseTable, BaseCarveWithoutLedger) {
  const std::string dir = service_dir("table_base");
  const LeaseTable table = load_lease_table(dir, 10, 4);
  EXPECT_EQ(table.active.size(), 4u);
  EXPECT_TRUE(table.retired.empty());
  EXPECT_EQ(table.next_lease_id, 4);
}

TEST(LeaseTable, LedgerRetiresParentAndAddsSubs) {
  const std::string dir = service_dir("table_recarve");
  // Base carve of 10 over 2: lease 0 = [0,5), lease 1 = [5,10). Retire
  // lease 1, splitting its tail [7,10) into two subs.
  RecarveRecord record;
  record.parent = 1;
  record.subs = {LeaseRange{.lease_id = 2, .begin = 7, .end = 8},
                 LeaseRange{.lease_id = 3, .begin = 8, .end = 10}};
  append_jsonl_line(recarve_ledger_path(dir), to_jsonl(record));
  const LeaseTable table = load_lease_table(dir, 10, 2);
  ASSERT_EQ(table.active.size(), 3u);  // lease 0 plus the two subs
  EXPECT_EQ(table.active[0].lease_id, 0);
  EXPECT_EQ(table.active[1].lease_id, 2);
  EXPECT_EQ(table.active[2].lease_id, 3);
  ASSERT_EQ(table.retired.size(), 1u);
  EXPECT_EQ(table.retired[0].lease_id, 1);
  EXPECT_EQ(table.next_lease_id, 4);

  // Sub-leases can themselves be re-carved: retire 3 into 4.
  RecarveRecord again;
  again.parent = 3;
  again.subs = {LeaseRange{.lease_id = 4, .begin = 9, .end = 10}};
  append_jsonl_line(recarve_ledger_path(dir), to_jsonl(again));
  const LeaseTable deeper = load_lease_table(dir, 10, 2);
  ASSERT_EQ(deeper.active.size(), 3u);
  EXPECT_EQ(deeper.active[2].lease_id, 4);
  EXPECT_EQ(deeper.next_lease_id, 5);
}

TEST(LeaseTable, DuplicateRetirementIsKeepFirst) {
  const std::string dir = service_dir("table_dup");
  RecarveRecord first;
  first.parent = 0;
  first.subs = {LeaseRange{.lease_id = 2, .begin = 0, .end = 5}};
  RecarveRecord second;  // heal pass re-appended; must be ignored
  second.parent = 0;
  second.subs = {LeaseRange{.lease_id = 3, .begin = 0, .end = 5}};
  append_jsonl_line(recarve_ledger_path(dir), to_jsonl(first));
  append_jsonl_line(recarve_ledger_path(dir), to_jsonl(second));
  const LeaseTable table = load_lease_table(dir, 10, 2);
  ASSERT_EQ(table.active.size(), 2u);  // lease 1 and sub 2 — not 3
  EXPECT_EQ(table.active[0].lease_id, 1);
  EXPECT_EQ(table.active[1].lease_id, 2);
}

TEST(LeaseTable, RejectsCorruptLedgers) {
  {  // sub id collides with the base carve
    const std::string dir = service_dir("table_bad_id");
    RecarveRecord record;
    record.parent = 0;
    record.subs = {LeaseRange{.lease_id = 1, .begin = 0, .end = 5}};
    append_jsonl_line(recarve_ledger_path(dir), to_jsonl(record));
    EXPECT_THROW((void)load_lease_table(dir, 10, 2), std::runtime_error);
  }
  {  // invalid sub range
    const std::string dir = service_dir("table_bad_range");
    RecarveRecord record;
    record.parent = 0;
    record.subs = {LeaseRange{.lease_id = 2, .begin = 6, .end = 6}};
    append_jsonl_line(recarve_ledger_path(dir), to_jsonl(record));
    EXPECT_THROW((void)load_lease_table(dir, 10, 2), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// Retirement, fencing and probes on the store.

TEST(LeaseStore, RetiredLeaseIsNeverClaimable) {
  const std::string dir = service_dir("retired");
  std::int64_t now = 0;
  LeaseStore store(dir, 1000, "alice", [&now] { return now; });
  std::fclose(std::fopen(recarved_marker_path(dir, 0).c_str(), "wbx"));
  EXPECT_TRUE(store.is_retired(0));
  EXPECT_FALSE(store.try_claim(0));
  now += 5000;  // not even after any amount of time
  EXPECT_FALSE(store.try_claim(0));
}

TEST(LeaseStore, FenceClaimStopsTheHolder) {
  const std::string dir = service_dir("fence");
  std::int64_t now = 0;
  LeaseStore holder(dir, 1000, "holder", [&now] { return now; });
  LeaseStore coordinator(dir, 1000, "coordinator", [&now] { return now; });
  ASSERT_TRUE(holder.try_claim(0));
  EXPECT_TRUE(coordinator.fence_claim(0));
  EXPECT_FALSE(holder.renew(0));  // the in-flight result gets dropped
  EXPECT_FALSE(holder.holds(0));
  EXPECT_TRUE(has_dead_claim(dir, 0));
  // Fencing an unclaimed lease reports there was nothing to fence.
  EXPECT_FALSE(coordinator.fence_claim(1));
}

TEST(LeaseStore, PeekClaimReadsWithoutWriting) {
  const std::string dir = service_dir("peek");
  std::int64_t now = 0;
  LeaseStore alice(dir, 1000, "alice", [&now] { return now; });
  LeaseStore probe(dir, 1000, "probe", [&now] { return now; });
  EXPECT_LT(probe.peek_claim(0).lease_id, 0);  // no claim file yet
  ASSERT_TRUE(alice.try_claim(0));
  const LeaseClaimRecord record = probe.peek_claim(0);
  EXPECT_EQ(record.lease_id, 0);
  EXPECT_EQ(record.owner, "alice");
  EXPECT_EQ(record.expires_at_ms, 1000);
  EXPECT_TRUE(alice.holds(0));  // the probe never perturbed the claim
}

}  // namespace
}  // namespace swarmfuzz::fuzz
