#include "fuzz/campaign.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <set>

#include "fuzz/report.h"
#include "util/logging.h"

namespace swarmfuzz::fuzz {
namespace {

CampaignConfig small_campaign(int missions = 6) {
  CampaignConfig config;
  config.num_missions = missions;
  config.mission.num_drones = 5;
  config.fuzzer.spoof_distance = 10.0;
  config.fuzzer.sim.dt = 0.05;
  config.fuzzer.sim.gps.rate_hz = 20.0;
  config.fuzzer.mission_budget = 12;  // keep tests fast
  config.num_threads = 2;
  return config;
}

TEST(Campaign, RejectsZeroMissions) {
  CampaignConfig config = small_campaign(0);
  EXPECT_THROW((void)run_campaign(config), std::invalid_argument);
}

TEST(Campaign, MissionSeedsAreWellMixed) {
  // Adjacent base seeds must produce disjoint mission sets; the naive
  // `base + index` derivation shared all but one mission between base seeds
  // b and b+1.
  std::set<std::uint64_t> a, b;
  for (int i = 0; i < 100; ++i) {
    a.insert(mission_seed(1000, i, 0));
    b.insert(mission_seed(1001, i, 0));
  }
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(b.size(), 100u);
  for (const std::uint64_t seed : a) EXPECT_EQ(b.count(seed), 0u);
  // Retry attempts get fresh seeds too.
  EXPECT_NE(mission_seed(1000, 3, 0), mission_seed(1000, 3, 1));
  // And the derivation is a pure function.
  EXPECT_EQ(mission_seed(1000, 3, 1), mission_seed(1000, 3, 1));
}

TEST(Campaign, SmallCampaignStillLogsCompletion) {
  class CaptureSink final : public util::LogSink {
   public:
    void write(util::LogLevel, std::string_view message) override {
      messages.emplace_back(message);
    }
    std::vector<std::string> messages;
  };
  CaptureSink sink;
  util::set_log_sink(&sink);
  util::set_log_level(util::LogLevel::kInfo);
  // 2 missions is below the old `num_missions >= 10` progress guard, which
  // used to suppress every line of campaign output.
  (void)run_campaign(small_campaign(2));
  util::set_log_sink(nullptr);
  util::set_log_level(util::LogLevel::kWarn);

  bool saw_completion = false;
  for (const std::string& message : sink.messages) {
    if (message.find("complete") != std::string::npos &&
        message.find("2/2 missions") != std::string::npos) {
      saw_completion = true;
    }
  }
  EXPECT_TRUE(saw_completion);
}

TEST(Campaign, ProgressCallbackReportsEveryMission) {
  CampaignConfig config = small_campaign();
  std::vector<CampaignProgress> updates;
  config.num_threads = 1;
  config.on_progress = [&updates](const CampaignProgress& p) {
    updates.push_back(p);
  };
  (void)run_campaign(config);
  ASSERT_EQ(updates.size(), 6u);
  for (size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(updates[i].completed, static_cast<int>(i) + 1);
    EXPECT_EQ(updates[i].total, 6);
    EXPECT_EQ(updates[i].resumed, 0);
    EXPECT_GE(updates[i].elapsed_s, 0.0);
  }
}

TEST(CampaignProgressMath, ThroughputCountsOnlyThisRunsMissions) {
  CampaignProgress p;
  p.completed = 5;
  p.resumed = 4;
  p.total = 10;
  p.elapsed_s = 10.0;
  EXPECT_EQ(p.completed_this_run(), 1);
  // 1 fresh mission in 10 s — not the 0.5/s a naive completed/elapsed rate
  // would claim by crediting the 4 checkpoint replays to this session.
  EXPECT_DOUBLE_EQ(p.rate_per_s(), 0.1);
  // 5 missions remain at 0.1/s: 50 s, not the 10 s the naive rate implies.
  EXPECT_DOUBLE_EQ(p.eta_s(), 50.0);

  // Until the first fresh mission lands there is no rate and no ETA.
  CampaignProgress replay_only;
  replay_only.completed = replay_only.resumed = 4;
  replay_only.total = 10;
  replay_only.elapsed_s = 2.0;
  EXPECT_EQ(replay_only.completed_this_run(), 0);
  EXPECT_EQ(replay_only.rate_per_s(), 0.0);
  EXPECT_EQ(replay_only.eta_s(), 0.0);
}

TEST(CampaignProgressMath, ResumeSeparatesReplaysFromFreshWork) {
  const std::string path =
      (std::filesystem::path{::testing::TempDir()} / "swarmfuzz_progress.jsonl")
          .string();
  std::remove(path.c_str());

  CampaignConfig config = small_campaign();
  config.checkpoint_path = path;
  config.max_new_missions = 2;
  (void)run_campaign(config);  // "killed" after 2 of 6 missions

  config.max_new_missions = 0;
  config.num_threads = 1;
  std::vector<CampaignProgress> updates;
  config.on_progress = [&updates](const CampaignProgress& p) {
    updates.push_back(p);
  };
  (void)run_campaign(config);

  // One update per mission executed this session; the 2 replays never enter
  // the throughput denominator but do count toward completion.
  ASSERT_EQ(updates.size(), 4u);
  for (size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(updates[i].resumed, 2);
    EXPECT_EQ(updates[i].completed, static_cast<int>(i) + 3);
    EXPECT_EQ(updates[i].completed_this_run(), static_cast<int>(i) + 1);
    if (updates[i].elapsed_s > 0.0) {
      EXPECT_DOUBLE_EQ(updates[i].rate_per_s(),
                       updates[i].completed_this_run() / updates[i].elapsed_s);
    }
  }
  std::remove(path.c_str());
}

TEST(Campaign, RunsAllMissions) {
  const CampaignResult result = run_campaign(small_campaign());
  EXPECT_EQ(result.outcomes.size(), 6u);
  for (const MissionOutcome& o : result.outcomes) {
    EXPECT_GT(o.mission_seed, 0u);
    EXPECT_FALSE(o.result.clean_run_failed);  // retries resample failures
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  CampaignConfig config = small_campaign();
  config.num_threads = 1;
  const CampaignResult serial = run_campaign(config);
  config.num_threads = 3;
  const CampaignResult parallel = run_campaign(config);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (size_t i = 0; i < serial.outcomes.size(); ++i) {
    EXPECT_EQ(serial.outcomes[i].mission_seed, parallel.outcomes[i].mission_seed);
    EXPECT_EQ(serial.outcomes[i].result.found, parallel.outcomes[i].result.found);
    EXPECT_EQ(serial.outcomes[i].result.iterations,
              parallel.outcomes[i].result.iterations);
  }
}

TEST(Campaign, PrefixReuseDoesNotChangeResults) {
  // Prefix reuse is a pure performance optimization: a campaign run with it
  // must compare deterministic_equal to one without, while actually skipping
  // simulation work.
  CampaignConfig config = small_campaign();
  config.fuzzer.prefix_reuse = true;
  const CampaignResult with_reuse = run_campaign(config);
  config.fuzzer.prefix_reuse = false;
  const CampaignResult without = run_campaign(config);

  EXPECT_TRUE(deterministic_equal(with_reuse, without));
  EXPECT_GT(with_reuse.total_prefix_steps_reused(), 0);
  EXPECT_EQ(without.total_prefix_steps_reused(), 0);
  EXPECT_LT(with_reuse.total_sim_steps_executed(),
            without.total_sim_steps_executed());
}

TEST(Campaign, AggregatesAreConsistent) {
  const CampaignResult result = run_campaign(small_campaign());
  EXPECT_EQ(result.num_fuzzable(), 6);
  EXPECT_GE(result.num_found(), 0);
  EXPECT_LE(result.num_found(), 6);
  EXPECT_NEAR(result.success_rate(),
              static_cast<double>(result.num_found()) / 6.0, 1e-12);
  EXPECT_EQ(result.found_start_times().size(),
            static_cast<size_t>(result.num_found()));
  EXPECT_EQ(result.found_durations().size(),
            static_cast<size_t>(result.num_found()));
  EXPECT_EQ(result.mission_vdos().size(), 6u);
}

TEST(Campaign, CumulativeSuccessCurveIsWellFormed) {
  const CampaignResult result = run_campaign(small_campaign());
  const auto curve = result.cumulative_success_by_vdo();
  ASSERT_FALSE(curve.empty());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);  // x sorted
  }
  for (const auto& [vdo, rate] : curve) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  // The final point covers all missions: rate equals overall success rate.
  EXPECT_NEAR(curve.back().second, result.success_rate(), 1e-12);
}

TEST(Campaign, CumulativeSuccessCurveDropsNonFiniteVdos) {
  // Obstacle-free or degenerate clean runs produce infinite (or, through
  // downstream arithmetic, NaN) mission VDOs. They must not appear on the
  // VDO axis, and a NaN must not poison the adjacent-point dedup sweep.
  auto outcome = [](int index, double vdo, bool found) {
    MissionOutcome o;
    o.mission_index = index;
    o.completed = true;
    o.result.found = found;
    o.result.mission_vdo = vdo;
    return o;
  };
  CampaignResult result;
  result.outcomes.push_back(outcome(0, 2.0, true));
  result.outcomes.push_back(outcome(1, std::numeric_limits<double>::quiet_NaN(),
                                    true));
  result.outcomes.push_back(outcome(2, 5.0, false));
  result.outcomes.push_back(outcome(3, std::numeric_limits<double>::infinity(),
                                    false));
  result.outcomes.push_back(outcome(4, 3.5, true));

  const auto curve = result.cumulative_success_by_vdo();
  ASSERT_EQ(curve.size(), 3u);
  for (const auto& [vdo, rate] : curve) EXPECT_TRUE(std::isfinite(vdo));
  EXPECT_DOUBLE_EQ(curve[0].first, 2.0);
  EXPECT_DOUBLE_EQ(curve[0].second, 1.0);  // 1 success of 1
  EXPECT_DOUBLE_EQ(curve[1].first, 3.5);
  EXPECT_DOUBLE_EQ(curve[1].second, 1.0);  // 2 of 2
  EXPECT_DOUBLE_EQ(curve[2].first, 5.0);
  EXPECT_DOUBLE_EQ(curve[2].second, 2.0 / 3.0);

  // All-non-finite input degenerates to an empty curve, not a crash.
  CampaignResult degenerate;
  degenerate.outcomes.push_back(
      outcome(0, std::numeric_limits<double>::quiet_NaN(), true));
  EXPECT_TRUE(degenerate.cumulative_success_by_vdo().empty());
}

TEST(Campaign, IterationAveragesBounded) {
  CampaignConfig config = small_campaign();
  const CampaignResult result = run_campaign(config);
  EXPECT_GE(result.avg_iterations_all(), 0.0);
  EXPECT_LE(result.avg_iterations_all(),
            config.fuzzer.mission_budget + config.fuzzer.per_seed_budget);
  if (result.num_found() > 0) {
    EXPECT_GT(result.avg_iterations_successful(), 0.0);
  } else {
    // No successes: the average is undefined (NaN), which serializes as
    // JSON null rather than an invalid bare nan token.
    EXPECT_TRUE(std::isnan(result.avg_iterations_successful()));
  }
}

TEST(Campaign, GridRunsEveryCell) {
  GridConfig grid;
  grid.swarm_sizes = {5};
  grid.spoof_distances = {5.0, 10.0};
  grid.base = small_campaign(3);
  const auto cells = run_grid(grid);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].swarm_size, 5);
  EXPECT_DOUBLE_EQ(cells[0].spoof_distance, 5.0);
  EXPECT_DOUBLE_EQ(cells[1].spoof_distance, 10.0);
  EXPECT_EQ(cells[0].result.outcomes.size(), 3u);
  EXPECT_EQ(cell_label(cells[0]), "5d-5m");
}

TEST(Campaign, ReportFormattersProduceTables) {
  GridConfig grid;
  grid.swarm_sizes = {5};
  grid.spoof_distances = {10.0};
  grid.base = small_campaign(3);
  const auto cells = run_grid(grid);
  const std::string table1 = format_success_table(cells);
  EXPECT_NE(table1.find("Table I"), std::string::npos);
  EXPECT_NE(table1.find("5 drones"), std::string::npos);
  EXPECT_NE(table1.find("10m spoofing"), std::string::npos);
  const std::string table2 = format_iterations_table(cells);
  EXPECT_NE(table2.find("Table II"), std::string::npos);
  EXPECT_NE(table2.find("5-drone"), std::string::npos);

  std::vector<CampaignResult> per_fuzzer{cells[0].result};
  const std::string table3 = format_ablation_table(per_fuzzer);
  EXPECT_NE(table3.find("Table III"), std::string::npos);
  EXPECT_NE(table3.find("SwarmFuzz"), std::string::npos);
  EXPECT_NE(table3.find("Success rate"), std::string::npos);
}

}  // namespace
}  // namespace swarmfuzz::fuzz
