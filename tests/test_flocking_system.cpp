#include "swarm/flocking_system.h"

#include <gtest/gtest.h>

#include "swarm/vasarhelyi.h"

namespace swarmfuzz::swarm {
namespace {

MissionSpec basic_mission() {
  MissionSpec mission;
  mission.initial_positions = {{0, 0, 10}, {15, 0, 10}};
  mission.destination = {200, 0, 10};
  return mission;
}

sim::WorldSnapshot broadcast_for(const MissionSpec& mission) {
  sim::WorldSnapshot snap;
  for (int i = 0; i < mission.num_drones(); ++i) {
    snap.push_back(
        {i, mission.initial_positions[static_cast<size_t>(i)], Vec3{}});
  }
  return snap;
}

TEST(FlockingSystem, NullControllerThrows) {
  EXPECT_THROW(FlockingControlSystem(nullptr), std::invalid_argument);
}

TEST(FlockingSystem, ComputesOneVelocityPerDrone) {
  auto system = make_vasarhelyi_system();
  const MissionSpec mission = basic_mission();
  system->reset(mission, 1);
  std::vector<Vec3> desired(2);
  system->compute(broadcast_for(mission), mission, desired);
  // Both head broadly toward the destination.
  EXPECT_GT(desired[0].x, 0.0);
  EXPECT_GT(desired[1].x, 0.0);
}

TEST(FlockingSystem, SizeMismatchThrows) {
  auto system = make_vasarhelyi_system();
  const MissionSpec mission = basic_mission();
  system->reset(mission, 1);
  std::vector<Vec3> wrong(3);
  EXPECT_THROW(system->compute(broadcast_for(mission), mission, wrong),
               std::invalid_argument);
}

TEST(FlockingSystem, ProbeMatchesControllerDirectly) {
  auto system = make_vasarhelyi_system();
  const MissionSpec mission = basic_mission();
  const auto snap = broadcast_for(mission);
  const VasarhelyiController reference;
  EXPECT_EQ(system->probe_desired_velocity(1, snap, mission),
            reference.desired_velocity(1, snap, mission));
}

TEST(FlockingSystem, ProbeIsConstAndRepeatable) {
  auto system = make_vasarhelyi_system();
  const MissionSpec mission = basic_mission();
  const auto snap = broadcast_for(mission);
  const Vec3 a = system->probe_desired_velocity(0, snap, mission);
  const Vec3 b = system->probe_desired_velocity(0, snap, mission);
  EXPECT_EQ(a, b);
}

TEST(FlockingSystem, ProbeUnknownIdThrows) {
  auto system = make_vasarhelyi_system();
  const MissionSpec mission = basic_mission();
  EXPECT_THROW(
      (void)system->probe_desired_velocity(5, broadcast_for(mission), mission),
      std::invalid_argument);
}

TEST(FlockingSystem, ProbeDoesNotDisturbCommStream) {
  // With packet drops enabled, interleaving probes must not change the
  // compute() outcomes (probes bypass the comm model entirely).
  const CommConfig comm{.drop_probability = 0.4};
  auto with_probes = make_vasarhelyi_system(comm);
  auto without_probes = make_vasarhelyi_system(comm);
  const MissionSpec mission = basic_mission();
  with_probes->reset(mission, 5);
  without_probes->reset(mission, 5);
  const auto snap = broadcast_for(mission);
  std::vector<Vec3> a(2), b(2);
  for (int i = 0; i < 20; ++i) {
    (void)with_probes->probe_desired_velocity(0, snap, mission);
    with_probes->compute(snap, mission, a);
    without_probes->compute(snap, mission, b);
    EXPECT_EQ(a[0], b[0]);
    EXPECT_EQ(a[1], b[1]);
  }
}

TEST(FlockingSystem, CommDropsAffectComputedVelocities) {
  // With certain drops the neighbour vanishes; at 15 m separation the
  // repulsion/attraction/friction contributions disappear.
  const MissionSpec mission = basic_mission();
  auto lossless = make_vasarhelyi_system();
  lossless->reset(mission, 1);
  CommConfig lossy_config{.drop_probability = 0.999999};
  // drop_probability must stay < 1; emulate certain loss via zero range.
  lossy_config = CommConfig{.range = 1.0};
  auto lossy = std::make_unique<FlockingControlSystem>(
      std::make_shared<VasarhelyiController>(), lossy_config);
  lossy->reset(mission, 1);
  auto snap = broadcast_for(mission);
  // Give the neighbour a big velocity difference so friction matters.
  snap.velocity[1] = {3, 0, 0};
  std::vector<Vec3> a(2), b(2);
  lossless->compute(snap, mission, a);
  lossy->compute(snap, mission, b);
  EXPECT_NE(a[0], b[0]);
}

TEST(FlockingSystem, WorksWithCustomController) {
  VasarhelyiParams params;
  params.v_flock = 1.0;
  auto system = std::make_unique<FlockingControlSystem>(
      std::make_shared<VasarhelyiController>(params));
  EXPECT_EQ(system->controller().name(), "vasarhelyi");
}

}  // namespace
}  // namespace swarmfuzz::swarm
