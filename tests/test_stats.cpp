#include "math/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace swarmfuzz::math {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyInputsGiveNanOrZero) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(mean(empty)));
  EXPECT_TRUE(std::isnan(min_value(empty)));
  EXPECT_TRUE(std::isnan(max_value(empty)));
  EXPECT_TRUE(std::isnan(percentile(empty, 50)));
  EXPECT_DOUBLE_EQ(stddev(empty), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3, -1, 7, 0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> v{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

TEST(Stats, PercentileClampsQuantile) {
  const std::vector<double> v{1, 2};
  EXPECT_DOUBLE_EQ(percentile(v, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150), 2.0);
}

TEST(Stats, SingleElement) {
  const std::vector<double> v{3.5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 73), 3.5);
  EXPECT_DOUBLE_EQ(median(v), 3.5);
}

TEST(Stats, BoxStatsFiveNumbers) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const BoxStats box = box_stats(v);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.max, 9.0);
  EXPECT_DOUBLE_EQ(box.median, 5.0);
  EXPECT_DOUBLE_EQ(box.q1, 3.0);
  EXPECT_DOUBLE_EQ(box.q3, 7.0);
  EXPECT_DOUBLE_EQ(box.mean, 5.0);
  EXPECT_EQ(box.count, 9);
}

TEST(Stats, BoxStatsEmpty) {
  const BoxStats box = box_stats(std::vector<double>{});
  EXPECT_EQ(box.count, 0);
}

TEST(Stats, EcdfMonotoneAndBounded) {
  const std::vector<double> v{1, 2, 2, 3};
  EXPECT_DOUBLE_EQ(ecdf(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(v, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(v, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(v, 10.0), 1.0);
}

TEST(Stats, EcdfCurveSpansDataAndEndsAtOne) {
  const std::vector<double> v{1, 5, 3, 2, 4};
  const auto curve = ecdf_curve(v, 5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().first, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 5.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);  // monotone
  }
}

TEST(Stats, HistogramCountsAndClamping) {
  const std::vector<double> v{-1, 0.5, 1.5, 2.5, 99};
  const auto counts = histogram(v, 0.0, 3.0, 3);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2);  // -1 clamps into bin 0, 0.5 lands there
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 2);  // 2.5 plus clamped 99
}

TEST(Stats, HistogramDegenerateRange) {
  const std::vector<double> v{1, 2};
  const auto counts = histogram(v, 5.0, 5.0, 4);
  for (const int c : counts) EXPECT_EQ(c, 0);
}

TEST(Stats, WilsonIntervalBasics) {
  const ProportionInterval ci = wilson_interval(49, 100);
  EXPECT_LT(ci.low, 0.49);
  EXPECT_GT(ci.high, 0.49);
  EXPECT_GT(ci.low, 0.38);
  EXPECT_LT(ci.high, 0.60);
}

TEST(Stats, WilsonIntervalEdgeCases) {
  const ProportionInterval none = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.low, 0.0);
  EXPECT_DOUBLE_EQ(none.high, 1.0);
  const ProportionInterval zero = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  const ProportionInterval all = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
  EXPECT_LT(all.low, 1.0);
}

TEST(Stats, WilsonIntervalNarrowsWithSamples) {
  const ProportionInterval small = wilson_interval(5, 10);
  const ProportionInterval large = wilson_interval(500, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

// Property: percentile(50) equals median for random inputs of many sizes.
class StatsSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(StatsSizeSweep, MedianMatchesPercentile50AndBoundsHold) {
  std::vector<double> v;
  unsigned state = 12345 + static_cast<unsigned>(GetParam());
  for (int i = 0; i < GetParam(); ++i) {
    state = state * 1664525u + 1013904223u;
    v.push_back(static_cast<double>(state % 1000) / 10.0);
  }
  EXPECT_DOUBLE_EQ(median(v), percentile(v, 50));
  EXPECT_LE(min_value(v), median(v));
  EXPECT_GE(max_value(v), median(v));
  const BoxStats box = box_stats(v);
  EXPECT_LE(box.q1, box.median);
  EXPECT_LE(box.median, box.q3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatsSizeSweep, ::testing::Values(1, 2, 3, 10, 101, 1000));

}  // namespace
}  // namespace swarmfuzz::math
