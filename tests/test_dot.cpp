#include "graph/dot.h"

#include <gtest/gtest.h>

namespace swarmfuzz::graph {
namespace {

TEST(Dot, EmptyGraphIsValidDot) {
  const std::string dot = to_dot(Digraph(0));
  EXPECT_NE(dot.find("digraph svg {"), std::string::npos);
  EXPECT_NE(dot.find('}'), std::string::npos);
}

TEST(Dot, NodesAndEdgesEmitted) {
  Digraph g(2);
  g.add_edge(0, 1, 0.5);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("0 [label=\"n0\"]"), std::string::npos);
  EXPECT_NE(dot.find("1 [label=\"n1\"]"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dot.find("0.500"), std::string::npos);
}

TEST(Dot, CustomLabelsAndScores) {
  Digraph g(2);
  g.add_edge(0, 1);
  DotOptions options;
  options.graph_name = "swarm";
  options.node_labels = {"drone-A", "drone-B"};
  options.node_scores = {0.75, 0.25};
  const std::string dot = to_dot(g, options);
  EXPECT_NE(dot.find("digraph swarm"), std::string::npos);
  EXPECT_NE(dot.find("drone-A"), std::string::npos);
  EXPECT_NE(dot.find("0.750"), std::string::npos);
}

TEST(Dot, EdgeWeightsCanBeHidden) {
  Digraph g(2);
  g.add_edge(0, 1, 0.123);
  DotOptions options;
  options.show_edge_weights = false;
  const std::string dot = to_dot(g, options);
  EXPECT_EQ(dot.find("0.123"), std::string::npos);
}

TEST(Dot, MissingLabelsFallBackToIds) {
  Digraph g(3);
  DotOptions options;
  options.node_labels = {"only-first"};
  const std::string dot = to_dot(g, options);
  EXPECT_NE(dot.find("only-first"), std::string::npos);
  EXPECT_NE(dot.find("n1"), std::string::npos);
  EXPECT_NE(dot.find("n2"), std::string::npos);
}

}  // namespace
}  // namespace swarmfuzz::graph
