// Golden determinism for the checkpoint/resume subsystem (DESIGN.md §10).
//
// Prefix reuse claims that a run resumed from a mid-mission checkpoint is
// *bit-identical* to the uninterrupted run — including every RNG-driven
// subsystem (GPS noise, IMU noise, comm packet drop) and both vehicle
// models, and including a spoofer whose window opens at or after the
// checkpoint. These tests hold it to that, sample by recorded sample.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "attack/spoofing.h"
#include "sim/checkpoint.h"
#include "sim/quadrotor.h"
#include "sim/simulator.h"
#include "swarm/flocking_system.h"
#include "swarm/vasarhelyi.h"

namespace swarmfuzz {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class VectorSink final : public sim::CheckpointSink {
 public:
  void on_checkpoint(sim::SimulationCheckpoint&& checkpoint) override {
    checkpoints.push_back(std::move(checkpoint));
  }
  std::vector<sim::SimulationCheckpoint> checkpoints;
};

sim::MissionSpec test_mission() {
  sim::MissionConfig config;
  config.num_drones = 10;
  return sim::generate_mission(config, 77);
}

sim::SimulationConfig test_config(sim::VehicleType vehicle, bool nav_filter) {
  sim::SimulationConfig config;
  config.vehicle = vehicle;
  config.gps.noise_stddev = 0.4;  // nonzero so the GPS RNG stream matters
  config.use_navigation_filter = nav_filter;
  return config;
}

swarm::FlockingControlSystem make_system(const swarm::CommConfig& comm) {
  return swarm::FlockingControlSystem(
      std::make_shared<swarm::VasarhelyiController>(), comm);
}

void expect_bit_identical(const sim::RunResult& resumed,
                          const sim::RunResult& reference) {
  EXPECT_EQ(resumed.collided, reference.collided);
  EXPECT_EQ(resumed.reached_destination, reference.reached_destination);
  EXPECT_EQ(resumed.end_time, reference.end_time);
  ASSERT_EQ(resumed.first_collision.has_value(),
            reference.first_collision.has_value());
  if (resumed.first_collision) {
    EXPECT_EQ(resumed.first_collision->kind, reference.first_collision->kind);
    EXPECT_EQ(resumed.first_collision->time, reference.first_collision->time);
    EXPECT_EQ(resumed.first_collision->drone, reference.first_collision->drone);
    EXPECT_EQ(resumed.first_collision->other, reference.first_collision->other);
  }

  const sim::Recorder& a = resumed.recorder;
  const sim::Recorder& b = reference.recorder;
  EXPECT_EQ(a.duration(), b.duration());
  EXPECT_EQ(a.closest_time(), b.closest_time());
  ASSERT_EQ(a.num_samples(), b.num_samples());
  ASSERT_EQ(a.num_drones(), b.num_drones());
  for (int i = 0; i < a.num_drones(); ++i) {
    ASSERT_EQ(a.min_obstacle_distance(i), b.min_obstacle_distance(i))
        << "drone " << i;
    ASSERT_EQ(a.time_of_min_obstacle_distance(i),
              b.time_of_min_obstacle_distance(i))
        << "drone " << i;
  }
  for (int s = 0; s < a.num_samples(); ++s) {
    ASSERT_EQ(a.times()[static_cast<size_t>(s)], b.times()[static_cast<size_t>(s)]);
    const std::span<const sim::DroneState> sa = a.sample(s);
    const std::span<const sim::DroneState> sb = b.sample(s);
    for (int i = 0; i < a.num_drones(); ++i) {
      const sim::DroneState& da = sa[static_cast<size_t>(i)];
      const sim::DroneState& db = sb[static_cast<size_t>(i)];
      ASSERT_EQ(da.position.x, db.position.x) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.position.y, db.position.y) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.position.z, db.position.z) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.velocity.x, db.velocity.x) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.velocity.y, db.velocity.y) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.velocity.z, db.velocity.z) << "sample " << s << " drone " << i;
    }
  }
}

// Runs the mission once with checkpointing, then resumes from every emitted
// checkpoint and demands the uninterrupted result bit-for-bit.
void run_resume_equivalence(sim::VehicleType vehicle, const swarm::CommConfig& comm,
                            bool nav_filter) {
  const sim::MissionSpec mission = test_mission();
  const sim::Simulator simulator(test_config(vehicle, nav_filter));

  swarm::FlockingControlSystem recording = make_system(comm);
  VectorSink sink;
  const sim::RunResult full = simulator.run(
      mission, recording, sim::RunHooks{.checkpoints = &sink, .checkpoint_period = 10.0});
  ASSERT_GE(sink.checkpoints.size(), 3u) << "mission too short to exercise resume";

  for (const sim::SimulationCheckpoint& cp : sink.checkpoints) {
    swarm::FlockingControlSystem resumed_system = make_system(comm);
    const sim::RunResult resumed =
        simulator.run_from(cp, full.recorder, mission, resumed_system);
    SCOPED_TRACE("checkpoint at t=" + std::to_string(cp.time));
    expect_bit_identical(resumed, full);
    EXPECT_EQ(resumed.steps_resumed, cp.steps);
    EXPECT_EQ(resumed.steps_executed + resumed.steps_resumed,
              full.steps_executed);
  }
}

TEST(SimCheckpoint, ResumePointMassGpsNoise) {
  run_resume_equivalence(sim::VehicleType::kPointMass, {}, /*nav_filter=*/false);
}

TEST(SimCheckpoint, ResumePointMassPacketDrop) {
  run_resume_equivalence(sim::VehicleType::kPointMass,
                         {.range = kInf, .drop_probability = 0.3},
                         /*nav_filter=*/false);
}

TEST(SimCheckpoint, ResumePointMassNavFilter) {
  run_resume_equivalence(sim::VehicleType::kPointMass, {}, /*nav_filter=*/true);
}

TEST(SimCheckpoint, ResumeQuadrotorGpsNoise) {
  run_resume_equivalence(sim::VehicleType::kQuadrotor, {}, /*nav_filter=*/false);
}

TEST(SimCheckpoint, ResumeQuadrotorNavFilterPacketDrop) {
  run_resume_equivalence(sim::VehicleType::kQuadrotor,
                         {.range = 40.0, .drop_probability = 0.15},
                         /*nav_filter=*/true);
}

// The fuzzing use case: a spoofed run resumed from a clean-run checkpoint
// captured at or before the spoofing window equals the from-scratch spoofed
// run. The attacked run is bit-identical to the clean run until t_start, so
// the *clean* prefix is a valid snapshot for *any* such window.
TEST(SimCheckpoint, SpoofedResumeFromCleanPrefix) {
  const sim::MissionSpec mission = test_mission();
  const sim::Simulator simulator(
      test_config(sim::VehicleType::kPointMass, /*nav_filter=*/true));

  swarm::FlockingControlSystem recording = make_system({});
  VectorSink sink;
  const sim::RunResult clean = simulator.run(
      mission, recording,
      sim::RunHooks{.checkpoints = &sink, .checkpoint_period = 10.0});
  ASSERT_GE(sink.checkpoints.size(), 2u);

  const attack::SpoofingPlan plan{.target = 2,
                                  .direction = attack::SpoofDirection::kRight,
                                  .start_time = sink.checkpoints[1].time + 3.0,
                                  .duration = 15.0,
                                  .distance = 10.0};
  const attack::GpsSpoofer spoofer(plan, mission);

  swarm::FlockingControlSystem scratch_system = make_system({});
  const sim::RunResult scratch = simulator.run(mission, scratch_system, &spoofer);

  for (size_t k = 0; k < 2; ++k) {  // both checkpoints precede the window
    ASSERT_LE(sink.checkpoints[k].time, plan.start_time);
    swarm::FlockingControlSystem resumed_system = make_system({});
    const sim::RunResult resumed = simulator.run_from(
        sink.checkpoints[k], clean.recorder, mission, resumed_system, &spoofer);
    SCOPED_TRACE("checkpoint at t=" + std::to_string(sink.checkpoints[k].time));
    expect_bit_identical(resumed, scratch);
  }
}

// A spoofing window opening exactly at the checkpoint time is the boundary
// case the loop-top capture order guarantees: sensing at t == checkpoint.time
// happens after capture, so the spoofer's first active tick replays exactly.
TEST(SimCheckpoint, SpoofWindowOpeningAtCheckpointTime) {
  const sim::MissionSpec mission = test_mission();
  const sim::Simulator simulator(
      test_config(sim::VehicleType::kPointMass, /*nav_filter=*/false));

  swarm::FlockingControlSystem recording = make_system({});
  VectorSink sink;
  const sim::RunResult clean = simulator.run(
      mission, recording,
      sim::RunHooks{.checkpoints = &sink, .checkpoint_period = 10.0});
  ASSERT_GE(sink.checkpoints.size(), 2u);
  const sim::SimulationCheckpoint& cp = sink.checkpoints[1];

  const attack::SpoofingPlan plan{.target = 1,
                                  .direction = attack::SpoofDirection::kLeft,
                                  .start_time = cp.time,
                                  .duration = 12.0,
                                  .distance = 10.0};
  const attack::GpsSpoofer spoofer(plan, mission);

  swarm::FlockingControlSystem scratch_system = make_system({});
  const sim::RunResult scratch = simulator.run(mission, scratch_system, &spoofer);
  swarm::FlockingControlSystem resumed_system = make_system({});
  const sim::RunResult resumed =
      simulator.run_from(cp, clean.recorder, mission, resumed_system, &spoofer);
  expect_bit_identical(resumed, scratch);
}

TEST(SimCheckpoint, QuadrotorVehicleStateRoundTrip) {
  sim::QuadrotorModel vehicle{sim::QuadrotorParams{}};
  vehicle.reset(math::Vec3{1.0, 2.0, 10.0}, math::Vec3{});
  const math::Vec3 desired{2.0, -1.0, 0.5};
  for (int i = 0; i < 40; ++i) vehicle.step(desired, 0.05);

  sim::VehicleCheckpoint saved;
  vehicle.save(saved);
  std::vector<sim::DroneState> expected;
  for (int i = 0; i < 40; ++i) {
    vehicle.step(desired, 0.05);
    expected.push_back(vehicle.state());
  }

  vehicle.restore(saved);
  for (int i = 0; i < 40; ++i) {
    vehicle.step(desired, 0.05);
    const sim::DroneState& want = expected[static_cast<size_t>(i)];
    const sim::DroneState got = vehicle.state();
    ASSERT_EQ(got.position.x, want.position.x) << "step " << i;
    ASSERT_EQ(got.position.y, want.position.y) << "step " << i;
    ASSERT_EQ(got.position.z, want.position.z) << "step " << i;
    ASSERT_EQ(got.velocity.x, want.velocity.x) << "step " << i;
    ASSERT_EQ(got.velocity.y, want.velocity.y) << "step " << i;
    ASSERT_EQ(got.velocity.z, want.velocity.z) << "step " << i;
  }
}

TEST(SimCheckpoint, MismatchedCheckpointThrows) {
  const sim::MissionSpec mission = test_mission();
  const sim::Simulator simulator(
      test_config(sim::VehicleType::kPointMass, /*nav_filter=*/false));
  swarm::FlockingControlSystem system = make_system({});

  VectorSink sink;
  swarm::FlockingControlSystem recording = make_system({});
  const sim::RunResult clean = simulator.run(
      mission, recording,
      sim::RunHooks{.checkpoints = &sink, .checkpoint_period = 10.0});
  ASSERT_FALSE(sink.checkpoints.empty());

  sim::SimulationCheckpoint wrong_count;  // empty state vectors
  EXPECT_THROW(
      (void)simulator.run_from(wrong_count, clean.recorder, mission, system),
      std::invalid_argument);

  // Right drone count but captured without the navigation filter the
  // simulator would need state for.
  const sim::Simulator fused(
      test_config(sim::VehicleType::kPointMass, /*nav_filter=*/true));
  EXPECT_THROW((void)fused.run_from(sink.checkpoints.front(), clean.recorder,
                                    mission, system),
               std::invalid_argument);

  // Resuming without the source recorder that supplies the sample prefix.
  EXPECT_THROW(
      (void)simulator.run(mission, system,
                          sim::RunHooks{.resume_from = &sink.checkpoints.back()}),
      std::invalid_argument);

  // A source recorder shorter than the checkpoint's sample count cannot
  // supply its prefix (e.g. a recorder from an earlier capture time).
  const sim::SimulationCheckpoint& last = sink.checkpoints.back();
  ASSERT_GT(last.recorder_state.num_samples, 0);
  sim::Recorder empty_source(mission.num_drones(), mission.obstacles,
                             simulator.config().record_period);
  EXPECT_THROW((void)simulator.run_from(last, empty_source, mission, system),
               std::invalid_argument);
}

}  // namespace
}  // namespace swarmfuzz
