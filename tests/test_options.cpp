#include "util/options.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace swarmfuzz::util {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, ParsesEqualsForm) {
  EXPECT_EQ(parse({"--missions=50"}).get_int("missions", 0), 50);
}

TEST(Options, ParsesSpaceForm) {
  EXPECT_EQ(parse({"--missions", "25"}).get_int("missions", 0), 25);
}

TEST(Options, BareFlagIsTrue) {
  EXPECT_TRUE(parse({"--verbose"}).get_bool("verbose", false));
}

TEST(Options, PositionalArgumentsPreserved) {
  const Options opts = parse({"input.csv", "--k=2", "output.csv"});
  ASSERT_EQ(opts.positional().size(), 2u);
  EXPECT_EQ(opts.positional()[0], "input.csv");
  EXPECT_EQ(opts.positional()[1], "output.csv");
}

TEST(Options, FallbacksWhenMissing) {
  const Options opts = parse({});
  EXPECT_EQ(opts.get("name", "default"), "default");
  EXPECT_EQ(opts.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(opts.get_double("x", 1.5), 1.5);
  EXPECT_TRUE(opts.get_bool("b", true));
}

TEST(Options, MalformedNumbersFallBack) {
  const Options opts = parse({"--n=abc", "--x=zzz"});
  EXPECT_EQ(opts.get_int("n", 3), 3);
  EXPECT_DOUBLE_EQ(opts.get_double("x", 2.5), 2.5);
}

TEST(Options, BoolParsingVariants) {
  EXPECT_TRUE(parse({"--f=yes"}).get_bool("f", false));
  EXPECT_TRUE(parse({"--f=on"}).get_bool("f", false));
  EXPECT_FALSE(parse({"--f=0"}).get_bool("f", true));
  EXPECT_FALSE(parse({"--f=no"}).get_bool("f", true));
}

TEST(Options, EnvironmentFallback) {
  ::setenv("SWARMFUZZ_TEST_OPTION", "99", 1);
  EXPECT_EQ(parse({}).get_int("test-option", 0), 99);
  // CLI overrides env.
  EXPECT_EQ(parse({"--test-option=1"}).get_int("test-option", 0), 1);
  ::unsetenv("SWARMFUZZ_TEST_OPTION");
}

TEST(Options, BareDoubleDashThrows) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Options, ProgramNameCaptured) {
  EXPECT_EQ(parse({}).program(), "prog");
}

}  // namespace
}  // namespace swarmfuzz::util
