#include "sim/recorder.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace swarmfuzz::sim {
namespace {

ObstacleField one_obstacle() {
  return ObstacleField({CylinderObstacle{{10, 0, 0}, 2.0}});
}

std::vector<DroneState> states_at(std::initializer_list<Vec3> positions) {
  std::vector<DroneState> states;
  for (const Vec3& p : positions) states.push_back({p, {}});
  return states;
}

TEST(Recorder, RejectsInvalidConstruction) {
  EXPECT_THROW(Recorder(0, ObstacleField{}), std::invalid_argument);
  EXPECT_THROW(Recorder(1, ObstacleField{}, -0.1), std::invalid_argument);
}

TEST(Recorder, RecordsSamplesAndTimes) {
  Recorder rec(2, one_obstacle());
  rec.record(0.0, states_at({{0, 0, 0}, {1, 0, 0}}));
  rec.record(0.1, states_at({{0.5, 0, 0}, {1.5, 0, 0}}));
  EXPECT_EQ(rec.num_samples(), 2);
  EXPECT_DOUBLE_EQ(rec.times()[1], 0.1);
  EXPECT_EQ(rec.sample(1)[0].position, Vec3(0.5, 0, 0));
  EXPECT_DOUBLE_EQ(rec.duration(), 0.1);
}

TEST(Recorder, StateCountMismatchThrows) {
  Recorder rec(2, one_obstacle());
  EXPECT_THROW(rec.record(0.0, states_at({{0, 0, 0}})), std::invalid_argument);
}

TEST(Recorder, RecordPeriodDecimatesSamples) {
  Recorder rec(1, one_obstacle(), 0.1);
  for (int i = 0; i < 10; ++i) {
    rec.record(i * 0.05, states_at({{static_cast<double>(i), 0, 0}}));
  }
  // Every other call kept: 0.0, 0.1, 0.2, 0.3, 0.4.
  EXPECT_EQ(rec.num_samples(), 5);
}

TEST(Recorder, VdoExactEvenForSkippedSamples) {
  // The minimum-distance pass must see every record() call, including those
  // not kept as trajectory samples.
  Recorder rec(1, one_obstacle(), 10.0);  // keeps almost nothing
  rec.record(0.0, states_at({{0, 0, 0}}));    // dist 8
  rec.record(0.05, states_at({{9, 0, 0}}));   // dist -1 (skipped sample)
  rec.record(0.1, states_at({{0, 5, 0}}));
  EXPECT_DOUBLE_EQ(rec.min_obstacle_distance(0), -1.0);
  EXPECT_DOUBLE_EQ(rec.time_of_min_obstacle_distance(0), 0.05);
}

TEST(Recorder, MinDistanceInfiniteWithoutObstacles) {
  Recorder rec(1, ObstacleField{});
  rec.record(0.0, states_at({{0, 0, 0}}));
  EXPECT_TRUE(std::isinf(rec.min_obstacle_distance(0)));
}

TEST(Recorder, AvgInterDistance) {
  Recorder rec(3, one_obstacle());
  rec.record(0.0, states_at({{0, 0, 0}, {3, 0, 0}, {0, 4, 0}}));
  // Pairs: 3, 4, 5 -> avg 4.
  EXPECT_DOUBLE_EQ(rec.avg_inter_distance(0), 4.0);
}

TEST(Recorder, ClosestTimeFindsMinAvgInterDistance) {
  Recorder rec(2, one_obstacle());
  rec.record(0.0, states_at({{0, 0, 0}, {10, 0, 0}}));
  rec.record(1.0, states_at({{0, 0, 0}, {2, 0, 0}}));  // closest here
  rec.record(2.0, states_at({{0, 0, 0}, {6, 0, 0}}));
  EXPECT_DOUBLE_EQ(rec.closest_time(), 1.0);
}

TEST(Recorder, SampleIndexAtClampsAndRounds) {
  Recorder rec(1, one_obstacle());
  rec.record(0.0, states_at({{0, 0, 0}}));
  rec.record(1.0, states_at({{1, 0, 0}}));
  rec.record(2.0, states_at({{2, 0, 0}}));
  EXPECT_EQ(rec.sample_index_at(-5.0), 0);
  EXPECT_EQ(rec.sample_index_at(0.4), 0);
  EXPECT_EQ(rec.sample_index_at(0.6), 1);
  EXPECT_EQ(rec.sample_index_at(99.0), 2);
}

TEST(Recorder, OutOfRangeQueriesThrow) {
  Recorder rec(1, one_obstacle());
  EXPECT_THROW((void)rec.sample(0), std::out_of_range);
  EXPECT_THROW((void)rec.sample_index_at(0.0), std::out_of_range);
  EXPECT_THROW((void)rec.min_obstacle_distance(1), std::out_of_range);
  EXPECT_THROW((void)rec.time_of_min_obstacle_distance(-1), std::out_of_range);
}

TEST(Recorder, CopySnapshotResumesAccumulatorsBitIdentically) {
  // Feeding the same tail of records into a copied recorder must reproduce
  // every accumulator (samples, decimation phase, obstacle minima)
  // bit-for-bit.
  Recorder original(1, one_obstacle(), 0.25);
  for (int i = 0; i < 7; ++i) {
    const double t = 0.1 * i;
    original.record(t, states_at({{0.5 * t, 0, 0}}));
  }

  Recorder resumed = original;  // the checkpoint
  for (int i = 7; i < 40; ++i) {
    const double t = 0.1 * i;
    original.record(t, states_at({{0.5 * t, 0, 0}}));
    resumed.record(t, states_at({{0.5 * t, 0, 0}}));
  }

  ASSERT_EQ(resumed.num_samples(), original.num_samples());
  for (int s = 0; s < original.num_samples(); ++s) {
    EXPECT_EQ(resumed.times()[static_cast<size_t>(s)],
              original.times()[static_cast<size_t>(s)]);
    EXPECT_EQ(resumed.sample(s)[0].position, original.sample(s)[0].position);
  }
  EXPECT_EQ(resumed.min_obstacle_distance(0), original.min_obstacle_distance(0));
  EXPECT_EQ(resumed.time_of_min_obstacle_distance(0),
            original.time_of_min_obstacle_distance(0));
  EXPECT_EQ(resumed.closest_time(), original.closest_time());
  EXPECT_EQ(resumed.duration(), original.duration());
}

TEST(Recorder, CheckpointRestoreFromLaterSourceIsBitIdentical) {
  // Simulation checkpoints store only a RecorderCheckpoint (accumulators +
  // sample count); restore() rebuilds the sample prefix from a *later*
  // recorder of the same run. The restored recorder must continue exactly
  // like one that never stopped recording at the capture point.
  Recorder original(1, one_obstacle(), 0.25);
  RecorderCheckpoint mid;
  for (int i = 0; i < 40; ++i) {
    const double t = 0.1 * i;
    if (i == 7) original.save(mid);
    original.record(t, states_at({{0.5 * t, 0, 0}}));
  }

  // `original` is now the end-of-run source; rebuild the state at i == 7.
  Recorder resumed(1, one_obstacle(), 0.25);
  resumed.restore(mid, original);
  Recorder replay(1, one_obstacle(), 0.25);
  for (int i = 0; i < 7; ++i) {
    const double t = 0.1 * i;
    replay.record(t, states_at({{0.5 * t, 0, 0}}));
  }
  for (int i = 7; i < 40; ++i) {
    const double t = 0.1 * i;
    resumed.record(t, states_at({{0.5 * t, 0, 0}}));
    replay.record(t, states_at({{0.5 * t, 0, 0}}));
  }

  ASSERT_EQ(resumed.num_samples(), replay.num_samples());
  for (int s = 0; s < replay.num_samples(); ++s) {
    EXPECT_EQ(resumed.times()[static_cast<size_t>(s)],
              replay.times()[static_cast<size_t>(s)]);
    EXPECT_EQ(resumed.sample(s)[0].position, replay.sample(s)[0].position);
  }
  EXPECT_EQ(resumed.min_obstacle_distance(0), replay.min_obstacle_distance(0));
  EXPECT_EQ(resumed.time_of_min_obstacle_distance(0),
            replay.time_of_min_obstacle_distance(0));
  EXPECT_EQ(resumed.closest_time(), replay.closest_time());
  EXPECT_EQ(resumed.duration(), replay.duration());
}

TEST(Recorder, CheckpointRestoreRejectsMismatchedSource) {
  Recorder original(1, one_obstacle(), 0.25);
  RecorderCheckpoint mid;
  for (int i = 0; i < 10; ++i) {
    const double t = 0.1 * i;
    if (i == 5) original.save(mid);
    original.record(t, states_at({{0.5 * t, 0, 0}}));
  }

  // Wrong drone count.
  Recorder two_drones(2, one_obstacle(), 0.25);
  EXPECT_THROW(two_drones.restore(mid, original), std::invalid_argument);

  // Source with fewer samples than the snapshot recorded.
  Recorder short_source(1, one_obstacle(), 0.25);
  short_source.record(0.0, states_at({{0, 0, 0}}));
  Recorder target(1, one_obstacle(), 0.25);
  EXPECT_THROW(target.restore(mid, short_source), std::invalid_argument);

  // Source whose kept-sample times disagree with the snapshot (different
  // record cadence).
  Recorder offbeat(1, one_obstacle(), 0.2);
  for (int i = 0; i < 10; ++i) {
    const double t = 0.1 * i;
    offbeat.record(t, states_at({{0.5 * t, 0, 0}}));
  }
  EXPECT_THROW(target.restore(mid, offbeat), std::invalid_argument);
}

TEST(Recorder, SingleDroneAvgInterDistanceIsZero) {
  Recorder rec(1, one_obstacle());
  rec.record(0.0, states_at({{0, 0, 0}}));
  EXPECT_DOUBLE_EQ(rec.avg_inter_distance(0), 0.0);
}

}  // namespace
}  // namespace swarmfuzz::sim
