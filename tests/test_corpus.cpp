#include "fuzz/corpus.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

namespace swarmfuzz::fuzz {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path{::testing::TempDir()} /
          ("swarmfuzz_corpus_" + name))
      .string();
}

ObjectiveEval eval_with(std::vector<double> clearance, double f = 3.0,
                        double t_min = 20.0, double separation = 8.0,
                        bool success = false) {
  ObjectiveEval eval;
  eval.f = f;
  eval.success = success;
  eval.drone_clearance = std::move(clearance);
  eval.min_clearance_time = t_min;
  eval.min_avg_separation = separation;
  return eval;
}

CorpusEntry entry_with(std::vector<std::uint32_t> signature, double cost,
                       double t_start = 10.0) {
  CorpusEntry entry;
  entry.seed = Seed{.target = 1, .victim = 2,
                    .direction = attack::SpoofDirection::kLeft,
                    .vdo = 4.5, .influence = 0.25};
  entry.t_start = t_start;
  entry.duration = 12.0;
  entry.f = 1.5;
  entry.cost = cost;
  entry.signature = std::move(signature);
  return entry;
}

TEST(Corpus, SignatureIsDeterministicSortedAndUnique) {
  const ObjectiveEval eval = eval_with({3.0, 15.0, 0.4}, 2.5, 30.0, 6.0);
  const auto a = novelty_signature(eval, 120.0, NoveltyConfig{});
  const auto b = novelty_signature(eval, 120.0, NoveltyConfig{});
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  for (size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1], a[i]);
}

TEST(Corpus, SignatureSeparatesDistinctBehaviors) {
  const auto near = novelty_signature(eval_with({0.5, 0.7}), 120.0, {});
  const auto far = novelty_signature(eval_with({25.0, 27.0}), 120.0, {});
  EXPECT_NE(near, far);
}

TEST(Corpus, SignatureBinsNonFiniteFeaturesDeterministically) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  const auto with_inf = novelty_signature(eval_with({kInf, 3.0}), 120.0, {});
  const auto with_nan = novelty_signature(eval_with({kNaN, 3.0}), 120.0, {});
  EXPECT_EQ(with_inf, novelty_signature(eval_with({kInf, 3.0}), 120.0, {}));
  EXPECT_EQ(with_nan, novelty_signature(eval_with({kNaN, 3.0}), 120.0, {}));
  // Infinity pegs the top clearance bucket, NaN the bottom one.
  EXPECT_NE(with_inf, with_nan);
}

TEST(Corpus, AdmitsOnlyNovelSignatures) {
  Corpus corpus;
  EXPECT_TRUE(corpus.admit(entry_with({1, 2}, 1.0)));
  EXPECT_FALSE(corpus.admit(entry_with({1, 2}, 0.5)));  // nothing new
  EXPECT_FALSE(corpus.admit(entry_with({2}, 0.1)));     // subset of lit bins
  EXPECT_TRUE(corpus.admit(entry_with({2, 3}, 2.0)));   // bin 3 is fresh
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.bins_lit(), 3);
  EXPECT_EQ(corpus.admissions(), 2);
}

TEST(Corpus, MinimizeKeepsCheapestEntryPerBin) {
  Corpus corpus;
  ASSERT_TRUE(corpus.admit(entry_with({1, 2}, 5.0, 10.0)));
  ASSERT_TRUE(corpus.admit(entry_with({2, 3}, 1.0, 20.0)));
  ASSERT_TRUE(corpus.admit(entry_with({1, 4}, 2.0, 30.0)));
  corpus.minimize();
  // Bin 1 is covered cheaper by the third entry, bin 2 by the second; the
  // first entry no longer covers anything exclusively and is dropped.
  ASSERT_EQ(corpus.size(), 2u);
  EXPECT_DOUBLE_EQ(corpus.entries()[0].t_start, 20.0);
  EXPECT_DOUBLE_EQ(corpus.entries()[1].t_start, 30.0);
  EXPECT_EQ(corpus.bins_lit(), 4);  // coverage is invariant
  EXPECT_EQ(corpus.admissions(), 3);
}

TEST(Corpus, MinimizeBreaksCostTiesByAdmissionOrder) {
  Corpus corpus;
  ASSERT_TRUE(corpus.admit(entry_with({1}, 5.0, 10.0)));
  ASSERT_TRUE(corpus.admit(entry_with({1, 2}, 5.0, 20.0)));
  ASSERT_TRUE(corpus.admit(entry_with({2, 3}, 1.0, 30.0)));
  corpus.minimize();
  // Bin 1: tie at cost 5 between the first two -> earliest admission wins,
  // so the middle entry loses both its bins and is dropped.
  ASSERT_EQ(corpus.size(), 2u);
  EXPECT_DOUBLE_EQ(corpus.entries()[0].t_start, 10.0);
  EXPECT_DOUBLE_EQ(corpus.entries()[1].t_start, 30.0);
}

TEST(Corpus, AutoMinimizesAboveMaxEntries) {
  Corpus corpus(2);
  ASSERT_TRUE(corpus.admit(entry_with({1}, 5.0)));
  ASSERT_TRUE(corpus.admit(entry_with({1, 2}, 5.0)));
  ASSERT_TRUE(corpus.admit(entry_with({2, 3}, 1.0)));
  EXPECT_LE(corpus.size(), 2u);
  EXPECT_EQ(corpus.bins_lit(), 3);
}

TEST(Corpus, JsonlRoundTripIsExact) {
  CorpusEntry entry;
  entry.seed = Seed{.target = 3, .victim = 0,
                    .direction = attack::SpoofDirection::kRight,
                    .vdo = 0.1 + 0.2, .influence = 1.0 / 3.0};
  entry.t_start = 2.2250738585072014e-305;  // %.17g stress values
  entry.duration = 19.937562499999999;
  entry.f = std::numeric_limits<double>::quiet_NaN();  // JSON null path
  entry.cost = 100.0 - 19.937562499999999;
  entry.signature = {7u, (1u << 24) + 3u, (5u << 24) + 1u};

  const CorpusEntry back = corpus_entry_from_json(to_jsonl(entry));
  EXPECT_EQ(back.seed.target, entry.seed.target);
  EXPECT_EQ(back.seed.victim, entry.seed.victim);
  EXPECT_EQ(back.seed.direction, entry.seed.direction);
  EXPECT_DOUBLE_EQ(back.seed.vdo, entry.seed.vdo);
  EXPECT_DOUBLE_EQ(back.seed.influence, entry.seed.influence);
  EXPECT_DOUBLE_EQ(back.t_start, entry.t_start);
  EXPECT_DOUBLE_EQ(back.duration, entry.duration);
  EXPECT_TRUE(std::isnan(back.f));
  EXPECT_DOUBLE_EQ(back.cost, entry.cost);
  EXPECT_EQ(back.signature, entry.signature);
}

TEST(Corpus, SaveLoadRoundTrip) {
  const std::string path = temp_path("roundtrip.jsonl");
  std::filesystem::remove(path);
  Corpus corpus;
  ASSERT_TRUE(corpus.admit(entry_with({1, 2}, 5.0, 11.0)));
  ASSERT_TRUE(corpus.admit(entry_with({3}, 1.0, 22.0)));
  save_corpus(corpus, path);

  const std::vector<CorpusEntry> loaded = load_corpus(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0].t_start, 11.0);
  EXPECT_DOUBLE_EQ(loaded[1].t_start, 22.0);
  EXPECT_EQ(loaded[0].signature, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(loaded[1].signature, (std::vector<std::uint32_t>{3}));
  std::filesystem::remove(path);
}

TEST(Corpus, LoadHealsTornFinalLine) {
  const std::string path = temp_path("torn.jsonl");
  std::filesystem::remove(path);
  Corpus corpus;
  ASSERT_TRUE(corpus.admit(entry_with({1}, 1.0, 11.0)));
  save_corpus(corpus, path);
  {
    // Simulate a crash mid-append: a frame fragment with no newline.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "{\"crc\":\"deadbeef\",\"data\":{\"target\":1,";
  }
  const std::vector<CorpusEntry> loaded = load_corpus(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].t_start, 11.0);
  std::filesystem::remove(path);
}

TEST(Corpus, LoadThrowsOnCorruptCompleteLine) {
  const std::string path = temp_path("corrupt.jsonl");
  std::filesystem::remove(path);
  Corpus corpus;
  ASSERT_TRUE(corpus.admit(entry_with({1}, 1.0)));
  ASSERT_TRUE(corpus.admit(entry_with({2}, 1.0)));
  save_corpus(corpus, path);

  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Flip a digit inside the first line's payload: the line is complete
  // (newline-terminated) but its CRC no longer matches.
  const auto digit = text.find_last_of("0123456789", text.find('\n'));
  ASSERT_NE(digit, std::string::npos);
  text[digit] = text[digit] == '7' ? '8' : '7';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_THROW((void)load_corpus(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Corpus, LoadMissingFileYieldsEmpty) {
  EXPECT_TRUE(load_corpus(temp_path("does_not_exist.jsonl")).empty());
}

}  // namespace
}  // namespace swarmfuzz::fuzz
