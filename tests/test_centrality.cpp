#include "graph/centrality.h"

#include <gtest/gtest.h>

#include <numeric>

namespace swarmfuzz::graph {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(DegreeCentrality, InDegreeCountsIncomingWeight) {
  Digraph g(3);
  g.add_edge(0, 2, 2.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 0, 1.0);
  const auto scores = in_degree_centrality(g);
  EXPECT_NEAR(sum(scores), 1.0, 1e-12);
  EXPECT_NEAR(scores[2], 0.8, 1e-12);
  EXPECT_NEAR(scores[0], 0.2, 1e-12);
  EXPECT_NEAR(scores[1], 0.0, 1e-12);
}

TEST(DegreeCentrality, OutDegreeCountsOutgoingWeight) {
  Digraph g(3);
  g.add_edge(0, 1, 3.0);
  g.add_edge(0, 2, 1.0);
  const auto scores = out_degree_centrality(g);
  EXPECT_NEAR(scores[0], 1.0, 1e-12);
  EXPECT_NEAR(scores[1], 0.0, 1e-12);
}

TEST(DegreeCentrality, EdgelessGraphAllZero) {
  const auto scores = in_degree_centrality(Digraph(3));
  for (const double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(EigenvectorCentrality, EmptyGraph) {
  EXPECT_TRUE(eigenvector_centrality(Digraph(0)).empty());
}

TEST(EigenvectorCentrality, SumsToOne) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const auto scores = eigenvector_centrality(g);
  EXPECT_NEAR(sum(scores), 1.0, 1e-9);
  // Symmetric ring: uniform.
  for (const double s : scores) EXPECT_NEAR(s, 0.25, 1e-6);
}

TEST(EigenvectorCentrality, HubReceivesHighestScore) {
  Digraph g(4);
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const auto scores = eigenvector_centrality(g);
  EXPECT_GT(scores[3], scores[1]);
  EXPECT_GT(scores[3], scores[2]);
}

TEST(EigenvectorCentrality, DisconnectedGraphConvergesViaTeleport) {
  Digraph g(4);
  g.add_edge(0, 1);
  // Nodes 2 and 3 are isolated; the teleport term keeps them positive.
  const auto scores = eigenvector_centrality(g);
  EXPECT_NEAR(sum(scores), 1.0, 1e-9);
  EXPECT_GT(scores[2], 0.0);
  EXPECT_GT(scores[1], scores[2]);
}

}  // namespace
}  // namespace swarmfuzz::graph
