// Transport retry-layer tests (DESIGN.md section 16): errno classification,
// deterministic backoff with bounded jitter, attempt exhaustion, the
// per-operation fault budget / quarantine, and process-wide counters. The
// retrier under test is always a local instance (or the process-wide one
// reset around the case), so cases cannot leak budget into each other.
#include "util/retry.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <vector>

namespace swarmfuzz::util {
namespace {

// A retrier that records sleeps instead of performing them.
struct Harness {
  std::vector<std::int64_t> sleeps;
  IoRetrier retrier;

  explicit Harness(RetryPolicy policy = {})
      : retrier(policy, /*jitter_seed=*/42,
                [this](std::int64_t ms) { sleeps.push_back(ms); }) {}
};

TEST(IoError, CarriesItsErrno) {
  const IoError error("disk went away", EIO);
  EXPECT_EQ(error.code(), EIO);
  EXPECT_STREQ(error.what(), "disk went away");
}

TEST(TransientErrno, ClassifiesKnownCodes) {
  // Worth retrying: interruptions, pressure, flaky media.
  EXPECT_TRUE(is_transient_errno(EINTR));
  EXPECT_TRUE(is_transient_errno(EAGAIN));
  EXPECT_TRUE(is_transient_errno(EIO));
  EXPECT_TRUE(is_transient_errno(ENOSPC));
  EXPECT_TRUE(is_transient_errno(EBUSY));
  // No retry fixes these.
  EXPECT_FALSE(is_transient_errno(ENOENT));
  EXPECT_FALSE(is_transient_errno(EACCES));
  EXPECT_FALSE(is_transient_errno(EROFS));
  EXPECT_FALSE(is_transient_errno(EINVAL));
  // Unknown (including "no errno captured") must err toward retrying: the
  // cost asymmetry is a few bounded sleeps vs an aborted shard.
  EXPECT_TRUE(is_transient_errno(0));
}

TEST(IoRetrier, ReturnsResultWithoutRetryOnSuccess) {
  Harness h;
  const int value = h.retrier.run("op", [] { return 41 + 1; });
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(h.sleeps.empty());
  EXPECT_EQ(h.retrier.counters().attempts, 1);
  EXPECT_EQ(h.retrier.counters().retries, 0);
}

TEST(IoRetrier, RetriesTransientFailuresThenSucceeds) {
  Harness h;
  int calls = 0;
  const int value = h.retrier.run("op", [&calls] {
    if (++calls < 3) throw IoError("hiccup", EIO);
    return calls;
  });
  EXPECT_EQ(value, 3);
  EXPECT_EQ(h.sleeps.size(), 2u);  // slept before attempts 2 and 3
  EXPECT_EQ(h.retrier.counters().attempts, 3);
  EXPECT_EQ(h.retrier.counters().retries, 2);
  EXPECT_EQ(h.retrier.counters().exhausted, 0);
}

TEST(IoRetrier, PermanentErrnoRethrowsImmediately) {
  Harness h;
  int calls = 0;
  EXPECT_THROW(h.retrier.run("op",
                             [&calls]() -> int {
                               ++calls;
                               throw IoError("gone", ENOENT);
                             }),
               IoError);
  EXPECT_EQ(calls, 1);  // no second attempt, no sleep
  EXPECT_TRUE(h.sleeps.empty());
  EXPECT_EQ(h.retrier.counters().permanent, 1);
  EXPECT_EQ(h.retrier.counters().retries, 0);
}

TEST(IoRetrier, ExhaustsAttemptsAndRethrows) {
  Harness h;
  int calls = 0;
  EXPECT_THROW(h.retrier.run("op",
                             [&calls]() -> int {
                               ++calls;
                               throw IoError("still down", EIO);
                             }),
               IoError);
  EXPECT_EQ(calls, h.retrier.policy().max_attempts);
  EXPECT_EQ(h.retrier.counters().exhausted, 1);
}

TEST(IoRetrier, BackoffGrowsAndStaysWithinJitterBounds) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 100;
  policy.backoff_multiplier = 4.0;
  policy.max_backoff_ms = 100000;
  policy.jitter = 0.5;
  Harness h(policy);
  std::int64_t previous = 0;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const std::int64_t nominal = static_cast<std::int64_t>(
        100.0 * std::pow(4.0, attempt - 1));
    const std::int64_t backoff = h.retrier.backoff_ms("op", attempt);
    EXPECT_GE(backoff, nominal / 2) << "attempt " << attempt;
    EXPECT_LE(backoff, nominal + nominal / 2) << "attempt " << attempt;
    EXPECT_GT(backoff, previous);  // exponential through the jitter band
    previous = backoff;
  }
}

TEST(IoRetrier, BackoffIsDeterministicInSeedOpAndAttempt) {
  Harness a;
  Harness b;
  // Same seed, op and attempt -> identical schedule across instances.
  EXPECT_EQ(a.retrier.backoff_ms("append", 1), b.retrier.backoff_ms("append", 1));
  EXPECT_EQ(a.retrier.backoff_ms("append", 2), b.retrier.backoff_ms("append", 2));
  // Different op or seed -> de-synchronised (with these values; the point is
  // the jitter actually depends on its inputs).
  EXPECT_NE(a.retrier.backoff_ms("append", 1), a.retrier.backoff_ms("claim", 1));
  b.retrier.set_jitter_seed(7);
  EXPECT_NE(a.retrier.backoff_ms("append", 1), b.retrier.backoff_ms("append", 1));
}

TEST(IoRetrier, BackoffIsCappedAtMax) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 10;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_ms = 500;
  policy.jitter = 0.0;  // exact cap, no band
  Harness h(policy);
  EXPECT_EQ(h.retrier.backoff_ms("op", 8), 500);
}

TEST(IoRetrier, QuarantinesOpAfterFaultBudget) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.fault_budget = 2;
  Harness h(policy);
  const auto always_fail = []() -> int { throw IoError("down", EIO); };

  // Two exhausted episodes consume the budget...
  EXPECT_THROW(h.retrier.run("op", always_fail), IoError);
  EXPECT_THROW(h.retrier.run("op", always_fail), IoError);
  EXPECT_TRUE(h.retrier.is_quarantined("op"));
  EXPECT_EQ(h.retrier.counters().quarantined_ops, 1);

  // ...after which the op runs single-shot: one attempt, no sleeps.
  const std::size_t sleeps_before = h.sleeps.size();
  const std::int64_t attempts_before = h.retrier.counters().attempts;
  EXPECT_THROW(h.retrier.run("op", always_fail), IoError);
  EXPECT_EQ(h.retrier.counters().attempts, attempts_before + 1);
  EXPECT_EQ(h.sleeps.size(), sleeps_before);

  // Other operation classes keep their full budget.
  EXPECT_FALSE(h.retrier.is_quarantined("other"));
}

TEST(IoRetrier, ResetClearsCountersAndQuarantine) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.fault_budget = 1;
  Harness h(policy);
  EXPECT_THROW(h.retrier.run("op", []() -> int { throw IoError("down", EIO); }),
               IoError);
  ASSERT_TRUE(h.retrier.is_quarantined("op"));
  h.retrier.reset();
  EXPECT_FALSE(h.retrier.is_quarantined("op"));
  EXPECT_EQ(h.retrier.counters().attempts, 0);
  EXPECT_EQ(h.retrier.counters().exhausted, 0);
}

TEST(IoRetrier, ProcessWideInstanceExists) {
  io_retrier().reset();
  (void)io_retrier().run("smoke", [] { return 1; });
  EXPECT_EQ(io_retrier().counters().attempts, 1);
  io_retrier().reset();
}

}  // namespace
}  // namespace swarmfuzz::util
