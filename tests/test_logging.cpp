#include "util/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace swarmfuzz::util {
namespace {

class CaptureSink final : public LogSink {
 public:
  void write(LogLevel level, std::string_view message) override {
    entries.emplace_back(level, std::string{message});
  }
  std::vector<std::pair<LogLevel, std::string>> entries;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_sink(&sink_);
    set_log_level(LogLevel::kTrace);
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }
  CaptureSink sink_;
};

TEST_F(LoggingTest, MessagesReachTheSink) {
  SWARMFUZZ_INFO("hello {}", 42);
  ASSERT_EQ(sink_.entries.size(), 1u);
  EXPECT_EQ(sink_.entries[0].first, LogLevel::kInfo);
  EXPECT_EQ(sink_.entries[0].second, "hello 42");
}

TEST_F(LoggingTest, FilteredLevelsAreDropped) {
  set_log_level(LogLevel::kError);
  SWARMFUZZ_DEBUG("dropped");
  SWARMFUZZ_WARN("dropped too");
  SWARMFUZZ_ERROR("kept");
  ASSERT_EQ(sink_.entries.size(), 1u);
  EXPECT_EQ(sink_.entries[0].second, "kept");
}

TEST_F(LoggingTest, AllLevelsHaveNames) {
  EXPECT_EQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_EQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST_F(LoggingTest, ParseLogLevelAcceptsAliases) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  // Unknown strings default to info rather than throwing.
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
}

TEST_F(LoggingTest, LogEnabledRespectsThreshold) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

}  // namespace
}  // namespace swarmfuzz::util
