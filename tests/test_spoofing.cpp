#include "attack/spoofing.h"

#include <gtest/gtest.h>

namespace swarmfuzz::attack {
namespace {

sim::MissionSpec mission_along_x() {
  sim::MissionSpec mission;
  mission.initial_positions = {{0, 0, 10}, {10, 0, 10}};
  mission.destination = {200, 0, 10};  // mission axis = +x
  return mission;
}

TEST(SpoofDirection, SignsAndNames) {
  EXPECT_EQ(direction_sign(SpoofDirection::kRight), 1);
  EXPECT_EQ(direction_sign(SpoofDirection::kLeft), -1);
  EXPECT_EQ(direction_name(SpoofDirection::kRight), "right");
  EXPECT_EQ(direction_name(SpoofDirection::kLeft), "left");
  EXPECT_EQ(opposite(SpoofDirection::kRight), SpoofDirection::kLeft);
  EXPECT_EQ(opposite(SpoofDirection::kLeft), SpoofDirection::kRight);
}

TEST(SpoofingPlan, ActiveWindowIsHalfOpen) {
  const SpoofingPlan plan{.target = 0, .start_time = 10.0, .duration = 5.0};
  EXPECT_FALSE(plan.active_at(9.99));
  EXPECT_TRUE(plan.active_at(10.0));
  EXPECT_TRUE(plan.active_at(14.99));
  EXPECT_FALSE(plan.active_at(15.0));
}

TEST(SpoofingPlan, ToStringMentionsAllParameters) {
  const SpoofingPlan plan{.target = 3,
                          .direction = SpoofDirection::kLeft,
                          .start_time = 12.5,
                          .duration = 8.0,
                          .distance = 5.0};
  const std::string s = plan.to_string();
  EXPECT_NE(s.find("target=3"), std::string::npos);
  EXPECT_NE(s.find("left"), std::string::npos);
  EXPECT_NE(s.find("12.50"), std::string::npos);
  EXPECT_NE(s.find("8.00"), std::string::npos);
  EXPECT_NE(s.find("5.0"), std::string::npos);
}

TEST(Spoofer, RejectsInvalidPlans) {
  const sim::MissionSpec mission = mission_along_x();
  EXPECT_THROW(GpsSpoofer(SpoofingPlan{.target = 5}, mission), std::invalid_argument);
  EXPECT_THROW(GpsSpoofer(SpoofingPlan{.target = -1}, mission), std::invalid_argument);
  EXPECT_THROW(GpsSpoofer(SpoofingPlan{.target = 0, .start_time = -1.0}, mission),
               std::invalid_argument);
  EXPECT_THROW(GpsSpoofer(SpoofingPlan{.target = 0, .duration = -1.0}, mission),
               std::invalid_argument);
  EXPECT_THROW(GpsSpoofer(SpoofingPlan{.target = 0, .distance = -5.0}, mission),
               std::invalid_argument);
}

TEST(Spoofer, RightSpoofingIsNegativeYForXAxisMission) {
  // Mission axis +x, left = +y, so spoofing right = -y.
  const SpoofingPlan plan{.target = 1,
                          .direction = SpoofDirection::kRight,
                          .start_time = 0.0,
                          .duration = 10.0,
                          .distance = 10.0};
  const GpsSpoofer spoofer(plan, mission_along_x());
  const Vec3 offset = spoofer.offset(1, 5.0);
  EXPECT_NEAR(offset.y, -10.0, 1e-9);
  EXPECT_NEAR(offset.x, 0.0, 1e-9);
  EXPECT_NEAR(offset.z, 0.0, 1e-9);
}

TEST(Spoofer, LeftSpoofingIsOpposite) {
  const SpoofingPlan plan{.target = 1,
                          .direction = SpoofDirection::kLeft,
                          .start_time = 0.0,
                          .duration = 10.0,
                          .distance = 10.0};
  const GpsSpoofer spoofer(plan, mission_along_x());
  EXPECT_NEAR(spoofer.offset(1, 5.0).y, 10.0, 1e-9);
}

TEST(Spoofer, OffsetOnlyForTargetAndWindow) {
  const SpoofingPlan plan{.target = 1,
                          .direction = SpoofDirection::kRight,
                          .start_time = 10.0,
                          .duration = 5.0,
                          .distance = 10.0};
  const GpsSpoofer spoofer(plan, mission_along_x());
  EXPECT_EQ(spoofer.offset(0, 12.0), Vec3{});   // wrong drone
  EXPECT_EQ(spoofer.offset(1, 9.0), Vec3{});    // before window
  EXPECT_EQ(spoofer.offset(1, 15.0), Vec3{});   // after window
  EXPECT_NE(spoofer.offset(1, 12.0), Vec3{});   // active
}

TEST(Spoofer, OffsetMagnitudeEqualsDistance) {
  const SpoofingPlan plan{.target = 0,
                          .direction = SpoofDirection::kRight,
                          .start_time = 0.0,
                          .duration = 1.0,
                          .distance = 5.0};
  const GpsSpoofer spoofer(plan, mission_along_x());
  EXPECT_NEAR(spoofer.active_offset().norm(), 5.0, 1e-9);
}

TEST(Spoofer, HorizontalConstantSpoofing) {
  // The offset is horizontal (no z component), the paper's horizontal
  // constant spoofing model.
  sim::MissionSpec mission = mission_along_x();
  mission.destination = {150, 80, 10};  // diagonal mission axis
  const SpoofingPlan plan{.target = 0,
                          .direction = SpoofDirection::kRight,
                          .start_time = 0.0,
                          .duration = 1.0,
                          .distance = 10.0};
  const GpsSpoofer spoofer(plan, mission);
  const Vec3 offset = spoofer.active_offset();
  EXPECT_DOUBLE_EQ(offset.z, 0.0);
  EXPECT_NEAR(offset.norm(), 10.0, 1e-9);
  // Perpendicular to the mission axis.
  EXPECT_NEAR(offset.dot(sim::mission_axis(mission)), 0.0, 1e-9);
}

}  // namespace
}  // namespace swarmfuzz::attack
