// Fault-containment tests (DESIGN.md section 11): numerical-health
// sentinels, watchdogs and deterministic fault injection at the simulator
// level, and the supervisor's retry/quarantine/fail-fast machinery at the
// campaign level.
#include "sim/fault.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "fuzz/campaign.h"
#include "fuzz/telemetry.h"
#include "sim/simulator.h"

namespace swarmfuzz {
namespace {

using sim::FaultInjection;
using sim::FaultKind;
using sim::RunFaultError;

std::string temp_path(const std::string& name) {
  return (std::filesystem::path{::testing::TempDir()} /
          ("swarmfuzz_fault_" + name))
      .string();
}

// Drives every drone straight toward the destination at fixed speed.
class StraightLineControl final : public sim::ControlSystem {
 public:
  void reset(const sim::MissionSpec&, std::uint64_t) override {}
  void compute(const sim::WorldSnapshot& snapshot, const sim::MissionSpec& mission,
               std::span<sim::Vec3> desired) override {
    for (size_t i = 0; i < snapshot.gps_position.size(); ++i) {
      desired[i] = (mission.destination - snapshot.gps_position[i])
                       .normalized() * 2.0;
    }
  }
};

sim::MissionSpec two_drone_mission() {
  sim::MissionSpec mission;
  mission.initial_positions = {{0, 0, 10}, {0, 10, 10}};
  mission.destination = {60, 5, 10};
  mission.max_time = 120.0;
  mission.arrival_radius = 5.0;
  mission.seed = 17;
  return mission;
}

sim::RunFault run_expecting_fault(const sim::Simulator& simulator,
                                  const sim::RunHooks& hooks) {
  StraightLineControl control;
  try {
    (void)simulator.run(two_drone_mission(), control, hooks);
  } catch (const RunFaultError& e) {
    return e.fault();
  }
  ADD_FAILURE() << "run completed without raising RunFaultError";
  return {};
}

// ---------------------------------------------------------------------------
// Simulator-level sentinels, watchdogs and injection.

TEST(Sentinel, InjectedNanControlOutputRaisesNumericalDivergence) {
  sim::RunHooks hooks;
  hooks.inject_fault = {.mode = FaultInjection::Mode::kNan, .at_time = 1.0};
  const sim::RunFault fault = run_expecting_fault(sim::Simulator{}, hooks);
  EXPECT_EQ(fault.kind, FaultKind::kNumericalDivergence);
  EXPECT_EQ(fault.drone, 0);  // the injection corrupts drone 0
  EXPECT_GE(fault.time, 1.0);
  EXPECT_NE(fault.detail.find("control output"), std::string::npos);
}

TEST(Sentinel, PositionEnvelopeCatchesBlowup) {
  // The mission flies well past |p| = 20 m on its way to the destination;
  // a tight envelope must classify that as numerical divergence.
  sim::SimulationConfig config;
  config.divergence_limit = 20.0;
  const sim::RunFault fault =
      run_expecting_fault(sim::Simulator{config}, sim::RunHooks{});
  EXPECT_EQ(fault.kind, FaultKind::kNumericalDivergence);
  EXPECT_NE(fault.detail.find("position"), std::string::npos);
}

TEST(Sentinel, ZeroLimitDisablesEnvelope) {
  sim::SimulationConfig config;
  config.divergence_limit = 0.0;
  sim::Simulator simulator{config};
  StraightLineControl control;
  const sim::RunResult run =
      simulator.run(two_drone_mission(), control, sim::RunHooks{});
  EXPECT_TRUE(run.reached_destination);
}

TEST(Watchdog, StepBudgetRaisesTimeout) {
  sim::RunHooks hooks;
  hooks.watchdog.max_steps = 10;
  const sim::RunFault fault = run_expecting_fault(sim::Simulator{}, hooks);
  EXPECT_EQ(fault.kind, FaultKind::kTimeout);
  EXPECT_NE(fault.detail.find("budget"), std::string::npos);
}

TEST(Watchdog, WallClockDeadlineContainsHang) {
  // The hang injection sleeps every tick; the deadline (checked every 64
  // ticks) must cut the run off as kTimeout instead of letting it crawl
  // through the whole mission.
  sim::RunHooks hooks;
  hooks.inject_fault = {.mode = FaultInjection::Mode::kHang, .at_time = 0.0};
  hooks.watchdog = sim::RunWatchdog::with_timeout(0.05);
  const sim::RunFault fault = run_expecting_fault(sim::Simulator{}, hooks);
  EXPECT_EQ(fault.kind, FaultKind::kTimeout);
  EXPECT_NE(fault.detail.find("deadline"), std::string::npos);
}

TEST(Injection, ThrowModeRaisesPlainException) {
  // kThrow deliberately raises an *unstructured* exception so the campaign
  // supervisor's kException classification path is exercised.
  sim::RunHooks hooks;
  hooks.inject_fault = {.mode = FaultInjection::Mode::kThrow, .at_time = 0.5};
  sim::Simulator simulator;
  StraightLineControl control;
  try {
    (void)simulator.run(two_drone_mission(), control, hooks);
    FAIL() << "injected throw did not propagate";
  } catch (const RunFaultError&) {
    FAIL() << "kThrow must not be pre-classified as a structured fault";
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(FaultKindNames, RoundTrip) {
  for (const FaultKind kind :
       {FaultKind::kNone, FaultKind::kNumericalDivergence, FaultKind::kTimeout,
        FaultKind::kException, FaultKind::kCleanRunFailed}) {
    EXPECT_EQ(sim::fault_kind_from_name(sim::fault_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)sim::fault_kind_from_name("gremlins"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault-plan parsing (--fault-inject / SWARMFUZZ_FAULT_INJECT).

TEST(FaultPlan, ParsesFullGrammar) {
  const auto plan = fuzz::parse_fault_plan("nan@2:10,throw@3,hang@4x1");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].mission_index, 2);
  EXPECT_EQ(plan[0].injection.mode, FaultInjection::Mode::kNan);
  EXPECT_EQ(plan[0].injection.at_time, 10.0);
  EXPECT_EQ(plan[0].fail_attempts, std::numeric_limits<int>::max());
  EXPECT_EQ(plan[1].mission_index, 3);
  EXPECT_EQ(plan[1].injection.mode, FaultInjection::Mode::kThrow);
  EXPECT_EQ(plan[1].injection.at_time, 0.0);
  EXPECT_EQ(plan[2].mission_index, 4);
  EXPECT_EQ(plan[2].injection.mode, FaultInjection::Mode::kHang);
  EXPECT_EQ(plan[2].fail_attempts, 1);

  const auto combined = fuzz::parse_fault_plan("nan@2:7.5x3");
  ASSERT_EQ(combined.size(), 1u);
  EXPECT_EQ(combined[0].injection.at_time, 7.5);
  EXPECT_EQ(combined[0].fail_attempts, 3);

  EXPECT_TRUE(fuzz::parse_fault_plan("").empty());
}

TEST(FaultPlan, MalformedSpecsThrow) {
  for (const char* bad : {"nan", "bogus@1", "nan@", "nan@x2", "nan@1x0",
                          "nan@-1", "nan@1:-5", "nan@1:abc"}) {
    EXPECT_THROW((void)fuzz::parse_fault_plan(bad), std::invalid_argument)
        << "spec: " << bad;
  }
}

// ---------------------------------------------------------------------------
// Campaign supervisor: retry, quarantine, fail-fast, checkpoint round-trip.

fuzz::CampaignConfig fault_campaign(int missions = 6) {
  fuzz::CampaignConfig config;
  config.num_missions = missions;
  config.mission.num_drones = 5;
  config.fuzzer.spoof_distance = 10.0;
  config.fuzzer.sim.dt = 0.05;
  config.fuzzer.sim.gps.rate_hz = 20.0;
  config.fuzzer.mission_budget = 12;  // keep tests fast
  config.num_threads = 2;
  return config;
}

TEST(CampaignFaults, InjectedFaultsAreQuarantinedWhileOthersComplete) {
  const fuzz::CampaignResult baseline = fuzz::run_campaign(fault_campaign());

  const std::string quarantine = temp_path("quarantine.jsonl");
  const std::string checkpoint = temp_path("faulted_checkpoint.jsonl");
  std::remove(quarantine.c_str());
  std::remove(checkpoint.c_str());

  fuzz::CampaignConfig config = fault_campaign();
  config.fault_injections = fuzz::parse_fault_plan("nan@1,throw@3");
  config.max_fault_retries = 1;
  config.quarantine_path = quarantine;
  config.checkpoint_path = checkpoint;
  const fuzz::CampaignResult faulted = fuzz::run_campaign(config);

  // Every mission completed; the injected ones carry their classification.
  EXPECT_EQ(faulted.num_completed(), config.num_missions);
  EXPECT_EQ(faulted.num_faulted(), 2);
  EXPECT_EQ(faulted.outcomes[1].fault, FaultKind::kNumericalDivergence);
  EXPECT_EQ(faulted.outcomes[3].fault, FaultKind::kException);
  EXPECT_EQ(faulted.fault_count(FaultKind::kNumericalDivergence), 1);
  EXPECT_EQ(faulted.fault_count(FaultKind::kException), 1);
  // Both retries were consumed before quarantining.
  EXPECT_EQ(faulted.outcomes[1].fault_attempts, config.max_fault_retries + 1);
  // Terminally-faulted missions are excluded from the paper metrics.
  EXPECT_EQ(faulted.num_fuzzable() + faulted.num_faulted(),
            config.num_missions);

  // Non-faulted missions are bit-identical to the fault-free campaign: the
  // containment machinery must not perturb healthy missions.
  for (const int index : {0, 2, 4, 5}) {
    EXPECT_TRUE(deterministic_equal(faulted.outcomes[index],
                                    baseline.outcomes[index]))
        << "mission " << index;
  }

  // The quarantine file holds one repro record per terminal fault.
  const auto records = fuzz::load_quarantine(quarantine);
  ASSERT_EQ(records.size(), 2u);
  const std::string hash = fuzz::campaign_config_hash(config);
  for (const fuzz::QuarantineRecord& record : records) {
    EXPECT_TRUE(record.mission_index == 1 || record.mission_index == 3);
    EXPECT_EQ(record.fuzzer, fuzzer_kind_name(config.kind));
    EXPECT_EQ(record.config_hash, hash);
    EXPECT_EQ(record.attempts, config.max_fault_retries + 1);
    const int index = record.mission_index;
    EXPECT_EQ(record.fault, faulted.outcomes[index].fault);
    EXPECT_EQ(record.mission_seed, faulted.outcomes[index].mission_seed);
  }

  // Faulted outcomes survive the checkpoint: a full replay reconstructs the
  // campaign — fault kinds included — without re-running anything.
  const fuzz::CampaignResult replayed = fuzz::run_campaign(config);
  EXPECT_TRUE(deterministic_equal(replayed, faulted));

  std::remove(quarantine.c_str());
  std::remove(checkpoint.c_str());
}

TEST(CampaignFaults, TransientFaultSucceedsOnSaltedRetry) {
  const fuzz::CampaignResult baseline = fuzz::run_campaign(fault_campaign());

  fuzz::CampaignConfig config = fault_campaign();
  // Mission 2 faults on its first attempt only; the salted retry must run
  // through and produce a healthy (different-seed) outcome.
  config.fault_injections = fuzz::parse_fault_plan("nan@2x1");
  config.max_fault_retries = 2;
  const fuzz::CampaignResult result = fuzz::run_campaign(config);

  EXPECT_EQ(result.num_completed(), config.num_missions);
  EXPECT_EQ(result.num_faulted(), 0);
  const fuzz::MissionOutcome& retried = result.outcomes[2];
  EXPECT_EQ(retried.fault, FaultKind::kNone);
  EXPECT_EQ(retried.fault_attempts, 1);
  // The retry re-draws the mission from the fault-salt ladder.
  const std::uint64_t expected_seed = fuzz::mission_seed(
      config.base_seed, 2, 1 * (config.clean_failure_retries + 1) + 0);
  EXPECT_EQ(retried.mission_seed, expected_seed);
  EXPECT_NE(retried.mission_seed, baseline.outcomes[2].mission_seed);
  // Every other mission is untouched.
  for (const int index : {0, 1, 3, 4, 5}) {
    EXPECT_TRUE(deterministic_equal(result.outcomes[index],
                                    baseline.outcomes[index]))
        << "mission " << index;
  }
}

TEST(CampaignFaults, QuarantineIsDedupedAcrossResume) {
  const std::string quarantine = temp_path("dedup_quarantine.jsonl");
  const std::string checkpoint = temp_path("dedup_checkpoint.jsonl");
  std::remove(quarantine.c_str());
  std::remove(checkpoint.c_str());

  fuzz::CampaignConfig config = fault_campaign(3);
  config.fault_injections = fuzz::parse_fault_plan("nan@1");
  config.max_fault_retries = 0;
  config.quarantine_path = quarantine;
  config.checkpoint_path = checkpoint;
  (void)fuzz::run_campaign(config);
  ASSERT_EQ(fuzz::load_quarantine(quarantine).size(), 1u);

  // A full replay from the checkpoint executes nothing — and appends nothing.
  (void)fuzz::run_campaign(config);
  EXPECT_EQ(fuzz::load_quarantine(quarantine).size(), 1u);

  // Losing the checkpoint (a crash before any record landed) re-runs the
  // mission; it faults again with the same (config, seed, index), so the
  // quarantine file must keep exactly one repro record, not grow one copy
  // per resume.
  std::remove(checkpoint.c_str());
  const fuzz::CampaignResult rerun = fuzz::run_campaign(config);
  EXPECT_EQ(rerun.fault_count(FaultKind::kNumericalDivergence), 1);
  EXPECT_EQ(fuzz::load_quarantine(quarantine).size(), 1u);

  std::remove(quarantine.c_str());
  std::remove(checkpoint.c_str());
}

TEST(CampaignFaults, StepBudgetTimeoutIsTerminalAndQuarantined) {
  // An eval step budget far below any real mission forces kTimeout through
  // the whole supervisor path deterministically (no wall clock involved).
  const std::string quarantine = temp_path("timeout_quarantine.jsonl");
  std::remove(quarantine.c_str());

  fuzz::CampaignConfig config = fault_campaign(2);
  config.fuzzer.eval_max_steps = 20;
  config.max_fault_retries = 1;
  config.quarantine_path = quarantine;
  const fuzz::CampaignResult result = fuzz::run_campaign(config);

  EXPECT_EQ(result.num_completed(), 2);
  EXPECT_EQ(result.fault_count(FaultKind::kTimeout), 2);
  const auto records = fuzz::load_quarantine(quarantine);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].fault, FaultKind::kTimeout);
  std::remove(quarantine.c_str());
}

TEST(CampaignFaults, HangIsContainedByMissionTimeout) {
  // Mission 1 hangs from t = 0; the per-mission wall-clock deadline must
  // classify it as kTimeout while mission 0 completes normally.
  fuzz::CampaignConfig config = fault_campaign(2);
  config.fuzzer.mission_budget = 6;
  config.fuzzer.mission_timeout_s = 3.0;
  config.fault_injections = fuzz::parse_fault_plan("hang@1");
  config.max_fault_retries = 0;  // terminal on the first fault: keeps it fast
  const fuzz::CampaignResult result = fuzz::run_campaign(config);

  EXPECT_EQ(result.num_completed(), 2);
  EXPECT_EQ(result.outcomes[0].fault, FaultKind::kNone);
  EXPECT_EQ(result.outcomes[1].fault, FaultKind::kTimeout);
}

TEST(CampaignFaults, FailFastStopsClaimingNewMissions) {
  fuzz::CampaignConfig config = fault_campaign();
  config.num_threads = 1;  // deterministic claim order 0, 1, 2, ...
  config.fault_injections = fuzz::parse_fault_plan("throw@1");
  config.max_fault_retries = 0;
  config.fail_fast = true;
  const fuzz::CampaignResult result = fuzz::run_campaign(config);

  // Mission 0 completed, mission 1 faulted, nothing after was claimed.
  EXPECT_EQ(result.num_completed(), 2);
  EXPECT_EQ(result.outcomes[0].fault, FaultKind::kNone);
  EXPECT_TRUE(result.outcomes[0].completed);
  EXPECT_EQ(result.outcomes[1].fault, FaultKind::kException);
  for (const int index : {2, 3, 4, 5}) {
    EXPECT_FALSE(result.outcomes[index].completed) << "mission " << index;
  }
}

TEST(CampaignConfigHash, SensitiveToOutcomeDeterminingFields) {
  const fuzz::CampaignConfig base = fault_campaign();
  const std::string hash = fuzz::campaign_config_hash(base);
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash, fuzz::campaign_config_hash(base));  // stable

  fuzz::CampaignConfig seed_changed = base;
  seed_changed.base_seed += 1;
  EXPECT_NE(fuzz::campaign_config_hash(seed_changed), hash);

  fuzz::CampaignConfig drones_changed = base;
  drones_changed.mission.num_drones += 1;
  EXPECT_NE(fuzz::campaign_config_hash(drones_changed), hash);

  // Fields that don't affect outcomes (threads, paths) don't affect the hash.
  fuzz::CampaignConfig threads_changed = base;
  threads_changed.num_threads = 7;
  threads_changed.quarantine_path = "elsewhere.jsonl";
  EXPECT_EQ(fuzz::campaign_config_hash(threads_changed), hash);
}

}  // namespace
}  // namespace swarmfuzz
