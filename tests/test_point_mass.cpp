#include "sim/point_mass.h"

#include <gtest/gtest.h>

namespace swarmfuzz::sim {
namespace {

TEST(PointMass, RejectsInvalidParams) {
  EXPECT_THROW(PointMassModel({.max_acceleration = 0.0}), std::invalid_argument);
  EXPECT_THROW(PointMassModel({.max_speed = -1.0}), std::invalid_argument);
  EXPECT_THROW(PointMassModel({.time_constant = 0.0}), std::invalid_argument);
}

TEST(PointMass, ResetSetsState) {
  PointMassModel model({});
  model.reset({1, 2, 3}, {0.5, 0, 0});
  EXPECT_EQ(model.state().position, Vec3(1, 2, 3));
  EXPECT_EQ(model.state().velocity, Vec3(0.5, 0, 0));
}

TEST(PointMass, ResetClampsInitialVelocity) {
  PointMassModel model({.max_speed = 2.0});
  model.reset({}, {10, 0, 0});
  EXPECT_NEAR(model.state().velocity.norm(), 2.0, 1e-12);
}

TEST(PointMass, ConvergesToDesiredVelocity) {
  PointMassModel model({});
  model.reset({}, {});
  const Vec3 target{2, 1, 0};
  for (int i = 0; i < 400; ++i) model.step(target, 0.01);
  EXPECT_NEAR((model.state().velocity - target).norm(), 0.0, 1e-3);
}

TEST(PointMass, RespectsAccelerationLimit) {
  PointMassModel model({.max_acceleration = 1.0, .time_constant = 0.01});
  model.reset({}, {});
  const Vec3 before = model.state().velocity;
  model.step({100, 0, 0}, 0.1);
  const double dv = (model.state().velocity - before).norm();
  EXPECT_LE(dv, 1.0 * 0.1 + 1e-9);
}

TEST(PointMass, RespectsSpeedLimit) {
  PointMassModel model({.max_speed = 3.0});
  model.reset({}, {});
  for (int i = 0; i < 1000; ++i) model.step({100, 100, 0}, 0.05);
  EXPECT_LE(model.state().velocity.norm(), 3.0 + 1e-9);
}

TEST(PointMass, PositionIntegratesVelocity) {
  PointMassModel model({.time_constant = 0.01});  // near-instant tracking
  model.reset({}, {1, 0, 0});
  for (int i = 0; i < 100; ++i) model.step({1, 0, 0}, 0.01);
  EXPECT_NEAR(model.state().position.x, 1.0, 0.02);  // ~1 m at 1 m/s for 1 s
}

TEST(PointMass, HoldsStillWithZeroCommand) {
  PointMassModel model({});
  model.reset({5, 5, 5}, {});
  for (int i = 0; i < 100; ++i) model.step({}, 0.05);
  EXPECT_EQ(model.state().position, Vec3(5, 5, 5));
}

TEST(PointMass, RejectsNonPositiveDt) {
  PointMassModel model({});
  model.reset({}, {});
  EXPECT_THROW(model.step({}, 0.0), std::invalid_argument);
  EXPECT_THROW(model.step({}, -0.01), std::invalid_argument);
}

TEST(PointMass, FactoryBuildsPointMass) {
  const auto vehicle = make_vehicle(VehicleType::kPointMass);
  vehicle->reset({1, 0, 0}, {});
  vehicle->step({1, 0, 0}, 0.1);
  EXPECT_GT(vehicle->state().velocity.x, 0.0);
}

// Property: tracking converges for a range of time constants.
class PointMassTauSweep : public ::testing::TestWithParam<double> {};

TEST_P(PointMassTauSweep, TracksStepCommand) {
  PointMassModel model({.time_constant = GetParam()});
  model.reset({}, {});
  for (int i = 0; i < 2000; ++i) model.step({1.5, -0.5, 0.2}, 0.01);
  EXPECT_NEAR((model.state().velocity - Vec3{1.5, -0.5, 0.2}).norm(), 0.0, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(TimeConstants, PointMassTauSweep,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5, 1.0));

}  // namespace
}  // namespace swarmfuzz::sim
