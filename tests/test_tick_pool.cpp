// TickPool unit tests plus the golden ParallelTick suite (DESIGN.md §15).
//
// The pool's contract is *bit-identical* parallelism: static contiguous
// chunks whose boundaries depend only on (n, threads), caller-inline lane 0,
// and serial-order error surfacing. The unit tests pin the chunking, reuse,
// and exception semantics; the ParallelTick tests hold the whole simulator
// to the determinism claim — entire missions run with sim_threads = 1 and
// sim_threads = 4 must agree on every recorded sample, collision event and
// outcome, across vehicle models, communication models, and checkpoint
// resumption.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/simulator.h"
#include "sim/tick_pool.h"
#include "swarm/comm.h"
#include "swarm/flocking_system.h"
#include "swarm/spatial_grid.h"
#include "swarm/vasarhelyi.h"

namespace {

using namespace swarmfuzz;

TEST(TickPool, ThreadsClampedToAtLeastOne) {
  EXPECT_EQ(sim::TickPool(0).threads(), 1);
  EXPECT_EQ(sim::TickPool(-3).threads(), 1);
  EXPECT_EQ(sim::TickPool(4).threads(), 4);
}

TEST(TickPool, ResolveSimThreads) {
  EXPECT_EQ(sim::resolve_sim_threads(3), 3);
  EXPECT_EQ(sim::resolve_sim_threads(1), 1);
  EXPECT_EQ(sim::resolve_sim_threads(0), sim::hardware_threads());
  EXPECT_EQ(sim::resolve_sim_threads(-2), sim::hardware_threads());
  EXPECT_GE(sim::hardware_threads(), 1);
}

// Every index in [0, n) is visited exactly once, chunks are contiguous, and
// lane order matches index order (lane boundaries are the static formula).
TEST(TickPool, PartitionsRangeExactlyOnce) {
  constexpr int kN = 100;
  sim::TickPool pool(4);

  std::vector<std::atomic<int>> visits(kN);
  std::vector<int> lane_of(kN, -1);
  pool.parallel_for(kN, [&](int begin, int end, int lane) {
    ASSERT_LE(0, begin);
    ASSERT_LT(begin, end);
    ASSERT_LE(end, kN);
    for (int i = begin; i < end; ++i) {
      visits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      lane_of[static_cast<size_t>(i)] = lane;  // disjoint chunks: no race
    }
  });

  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
  // Static contiguous chunking implies lanes are non-decreasing over indices
  // and exactly [c*n/T, (c+1)*n/T) per lane.
  for (int i = 1; i < kN; ++i) {
    EXPECT_LE(lane_of[static_cast<size_t>(i - 1)], lane_of[static_cast<size_t>(i)]);
  }
  for (int i = 0; i < kN; ++i) {
    const int expected = lane_of[static_cast<size_t>(i)];
    const auto bound = [&](int lane) {
      return static_cast<int>((static_cast<long long>(kN) * lane) / 4);
    };
    EXPECT_GE(i, bound(expected));
    EXPECT_LT(i, bound(expected + 1));
  }
}

// n < threads leaves some lanes with empty chunks; coverage must still be
// exactly once and empty lanes must not be invoked.
TEST(TickPool, SmallRangeSkipsEmptyChunks) {
  sim::TickPool pool(4);
  std::vector<std::atomic<int>> visits(2);
  std::atomic<int> invocations{0};
  pool.parallel_for(2, [&](int begin, int end, int /*lane*/) {
    invocations.fetch_add(1, std::memory_order_relaxed);
    ASSERT_LT(begin, end);
    for (int i = begin; i < end; ++i) {
      visits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(visits[0].load(), 1);
  EXPECT_EQ(visits[1].load(), 1);
  EXPECT_LE(invocations.load(), 2);
}

// The generation handoff supports arbitrary reuse: many batches through one
// pool, each fully completed before parallel_for returns.
TEST(TickPool, ReusableAcrossGenerations) {
  constexpr int kN = 64;
  sim::TickPool pool(3);
  std::vector<int> data(kN, 0);
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(kN, [&](int begin, int end, int /*lane*/) {
      for (int i = begin; i < end; ++i) data[static_cast<size_t>(i)] += 1;
    });
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(data[static_cast<size_t>(i)], 200) << "index " << i;
  }
}

// An exception from any lane is rethrown on the caller; when several lanes
// throw, the lowest lane wins — the error the serial loop would have hit
// first. The pool stays usable afterwards.
TEST(TickPool, RethrowsLowestLaneAndStaysUsable) {
  sim::TickPool pool(4);
  try {
    pool.parallel_for(100, [&](int /*begin*/, int /*end*/, int lane) {
      if (lane == 1 || lane == 3) {
        throw std::runtime_error("lane " + std::to_string(lane));
      }
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "lane 1");
  }

  std::atomic<int> total{0};
  pool.parallel_for(100, [&](int begin, int end, int /*lane*/) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 100);
}

// threads = 1 spawns no workers and runs the single chunk inline on the
// calling thread (lane 0, full range).
TEST(TickPool, SingleThreadRunsInline) {
  sim::TickPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.parallel_for(10, [&](int begin, int end, int lane) {
    ++calls;
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 10);
    EXPECT_EQ(lane, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

// Lane 0 always runs on the caller even with workers present.
TEST(TickPool, CallerRunsLaneZero) {
  sim::TickPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::mutex m;
  std::vector<std::pair<int, bool>> seen;  // (lane, on_caller)
  pool.parallel_for(100, [&](int /*begin*/, int /*end*/, int lane) {
    const bool on_caller = std::this_thread::get_id() == caller;
    const std::lock_guard<std::mutex> lock(m);
    seen.emplace_back(lane, on_caller);
  });
  for (const auto& [lane, on_caller] : seen) {
    if (lane == 0) EXPECT_TRUE(on_caller);
  }
}

// ---------------------------------------------------------------------------
// ParallelTick: golden whole-mission bit-identity, sim_threads 1 vs 4.
// ---------------------------------------------------------------------------

constexpr double kInf = std::numeric_limits<double>::infinity();

// RAII save/restore for the process-wide spatial-grid policy (the parallel
// kernels live on the grid fast paths).
class GridPolicyScope {
 public:
  GridPolicyScope(bool enabled, int min_drones)
      : saved_(swarm::spatial_grid_policy()) {
    swarm::spatial_grid_policy() = {enabled, min_drones};
  }
  ~GridPolicyScope() { swarm::spatial_grid_policy() = saved_; }

 private:
  swarm::SpatialGridPolicy saved_;
};

// 40 drones: above kSerialTickThreshold so the pool actually engages, small
// enough that four full missions per test stay fast. max_time is shortened —
// determinism must hold at every tick, so a prefix of the mission is as
// strong a check as the whole and much cheaper.
sim::MissionSpec golden_mission() {
  sim::MissionConfig config;
  config.num_drones = 40;
  config.spawn_range = 120.0;
  config.max_time = 25.0;
  return sim::generate_mission(config, 91);
}

sim::SimulationConfig golden_config(sim::VehicleType vehicle, int sim_threads) {
  sim::SimulationConfig config;
  config.vehicle = vehicle;
  config.gps.noise_stddev = 0.4;  // nonzero so the GPS RNG stream matters
  config.sim_threads = sim_threads;
  return config;
}

void expect_bit_identical(const sim::RunResult& threaded,
                          const sim::RunResult& serial) {
  EXPECT_EQ(threaded.collided, serial.collided);
  EXPECT_EQ(threaded.reached_destination, serial.reached_destination);
  EXPECT_EQ(threaded.end_time, serial.end_time);
  ASSERT_EQ(threaded.first_collision.has_value(),
            serial.first_collision.has_value());
  if (threaded.first_collision) {
    EXPECT_EQ(threaded.first_collision->kind, serial.first_collision->kind);
    EXPECT_EQ(threaded.first_collision->time, serial.first_collision->time);
    EXPECT_EQ(threaded.first_collision->drone, serial.first_collision->drone);
    EXPECT_EQ(threaded.first_collision->other, serial.first_collision->other);
  }

  const sim::Recorder& a = threaded.recorder;
  const sim::Recorder& b = serial.recorder;
  EXPECT_EQ(a.duration(), b.duration());
  ASSERT_EQ(a.num_samples(), b.num_samples());
  ASSERT_EQ(a.num_drones(), b.num_drones());
  for (int s = 0; s < a.num_samples(); ++s) {
    EXPECT_EQ(a.times()[static_cast<size_t>(s)], b.times()[static_cast<size_t>(s)]);
    const std::span<const sim::DroneState> sa = a.sample(s);
    const std::span<const sim::DroneState> sb = b.sample(s);
    for (int i = 0; i < a.num_drones(); ++i) {
      const sim::DroneState& da = sa[static_cast<size_t>(i)];
      const sim::DroneState& db = sb[static_cast<size_t>(i)];
      ASSERT_EQ(da.position.x, db.position.x) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.position.y, db.position.y) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.position.z, db.position.z) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.velocity.x, db.velocity.x) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.velocity.y, db.velocity.y) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.velocity.z, db.velocity.z) << "sample " << s << " drone " << i;
    }
  }
  for (int i = 0; i < a.num_drones(); ++i) {
    EXPECT_EQ(a.min_obstacle_distance(i), b.min_obstacle_distance(i)) << i;
    EXPECT_EQ(a.time_of_min_obstacle_distance(i),
              b.time_of_min_obstacle_distance(i))
        << i;
  }
}

void run_thread_equivalence(sim::VehicleType vehicle,
                            const swarm::CommConfig& comm) {
  const GridPolicyScope scope(true, 2);
  const sim::MissionSpec mission = golden_mission();
  const sim::Simulator serial_sim(golden_config(vehicle, 1));
  const sim::Simulator threaded_sim(golden_config(vehicle, 4));

  swarm::FlockingControlSystem system(
      std::make_shared<swarm::VasarhelyiController>(), comm);

  const sim::RunResult serial = serial_sim.run(mission, system);
  const sim::RunResult threaded = threaded_sim.run(mission, system);
  expect_bit_identical(threaded, serial);
}

TEST(ParallelTick, PointMassTrivialComm) {
  run_thread_equivalence(sim::VehicleType::kPointMass, {});
}

// drop_probability = 0 with finite range takes the parallel filter_at()
// communication path (no RNG draws on either path).
TEST(ParallelTick, PointMassLosslessRangeLimited) {
  run_thread_equivalence(sim::VehicleType::kPointMass,
                         {.range = 40.0, .drop_probability = 0.0});
}

// drop_probability > 0 keeps communication serial (receiver-order bernoulli
// draws) while the controller batch and collision scans still parallelize —
// this pins the mixed serial/parallel tick and the RNG stream alignment.
TEST(ParallelTick, PointMassRangeLimitedWithDrop) {
  run_thread_equivalence(sim::VehicleType::kPointMass,
                         {.range = 40.0, .drop_probability = 0.15});
}

TEST(ParallelTick, PointMassPacketDropInfiniteRange) {
  run_thread_equivalence(sim::VehicleType::kPointMass,
                         {.range = kInf, .drop_probability = 0.3});
}

TEST(ParallelTick, QuadrotorTrivialComm) {
  run_thread_equivalence(sim::VehicleType::kQuadrotor, {});
}

// Checkpoint/prefix-resume composes with intra-tick threading: a checkpoint
// captured by a serial run, resumed with sim_threads = 4, must reproduce the
// uninterrupted serial run bit-for-bit (the fuzzer's prefix-reuse path runs
// threaded simulators over serially-captured clean-run checkpoints).
TEST(ParallelTick, CheckpointResumeThreadedMatchesSerial) {
  const GridPolicyScope scope(true, 2);
  const sim::MissionSpec mission = golden_mission();
  const sim::Simulator serial_sim(
      golden_config(sim::VehicleType::kPointMass, 1));
  const sim::Simulator threaded_sim(
      golden_config(sim::VehicleType::kPointMass, 4));

  swarm::FlockingControlSystem system(
      std::make_shared<swarm::VasarhelyiController>(),
      swarm::CommConfig{.range = 40.0, .drop_probability = 0.15});

  class VectorSink final : public sim::CheckpointSink {
   public:
    void on_checkpoint(sim::SimulationCheckpoint&& checkpoint) override {
      checkpoints.push_back(std::move(checkpoint));
    }
    std::vector<sim::SimulationCheckpoint> checkpoints;
  };

  VectorSink sink;
  sim::RunHooks hooks;
  hooks.checkpoints = &sink;
  hooks.checkpoint_period = 5.0;
  const sim::RunResult serial = serial_sim.run(mission, system, hooks);
  ASSERT_GE(sink.checkpoints.size(), 2u);

  // Resume from a mid-mission checkpoint on the threaded simulator.
  const sim::SimulationCheckpoint& mid =
      sink.checkpoints[sink.checkpoints.size() / 2];
  const sim::RunResult resumed =
      threaded_sim.run_from(mid, serial.recorder, mission, system);
  expect_bit_identical(resumed, serial);
}

}  // namespace
