#include "sim/gps.h"

#include <gtest/gtest.h>

namespace swarmfuzz::sim {
namespace {

GpsSensor make_sensor(double rate_hz, double noise = 0.0) {
  return GpsSensor(GpsConfig{.rate_hz = rate_hz, .noise_stddev = noise},
                   math::Rng(42));
}

TEST(Gps, RejectsInvalidConfig) {
  EXPECT_THROW(make_sensor(0.0), std::invalid_argument);
  EXPECT_THROW(make_sensor(-10.0), std::invalid_argument);
  EXPECT_THROW(make_sensor(10.0, -1.0), std::invalid_argument);
}

TEST(Gps, NoiselessReadingTracksPosition) {
  GpsSensor gps = make_sensor(100.0);
  gps.reset();
  EXPECT_EQ(gps.read({1, 2, 3}, {}, 0.0), Vec3(1, 2, 3));
  EXPECT_EQ(gps.read({4, 5, 6}, {}, 0.01), Vec3(4, 5, 6));
  EXPECT_EQ(gps.fix_count(), 2);
}

TEST(Gps, HoldsFixBetweenSamples) {
  GpsSensor gps = make_sensor(10.0);  // 0.1 s period
  gps.reset();
  const Vec3 first = gps.read({1, 0, 0}, {}, 0.0);
  // 0.05 s later: below the period, the old fix is held.
  const Vec3 held = gps.read({99, 0, 0}, {}, 0.05);
  EXPECT_EQ(held, first);
  EXPECT_EQ(gps.fix_count(), 1);
  // At 0.1 s a new fix is taken.
  const Vec3 fresh = gps.read({99, 0, 0}, {}, 0.1);
  EXPECT_EQ(fresh, Vec3(99, 0, 0));
  EXPECT_EQ(gps.fix_count(), 2);
}

TEST(Gps, SamplingToleratesFloatAccumulation) {
  GpsSensor gps = make_sensor(20.0);  // 0.05 s period
  gps.reset();
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    (void)gps.read({static_cast<double>(i), 0, 0}, {}, t);
    t += 0.05;  // accumulating floating point error
  }
  EXPECT_EQ(gps.fix_count(), 100);
}

TEST(Gps, SpoofOffsetAddedToFix) {
  GpsSensor gps = make_sensor(100.0);
  gps.reset();
  const Vec3 reading = gps.read({10, 20, 30}, {0, 5, 0}, 0.0);
  EXPECT_EQ(reading, Vec3(10, 25, 30));
}

TEST(Gps, SpoofOffsetOnlyAppliesAtSampleTime) {
  GpsSensor gps = make_sensor(10.0);
  gps.reset();
  (void)gps.read({0, 0, 0}, {}, 0.0);
  // Offset supplied mid-period does not alter the held fix.
  const Vec3 held = gps.read({0, 0, 0}, {0, 99, 0}, 0.03);
  EXPECT_EQ(held, Vec3(0, 0, 0));
}

TEST(Gps, ResetClearsState) {
  GpsSensor gps = make_sensor(1.0);
  gps.reset();
  (void)gps.read({1, 1, 1}, {}, 0.0);
  gps.reset();
  EXPECT_EQ(gps.fix_count(), 0);
  // After reset an immediate fix is taken even at the same timestamp.
  EXPECT_EQ(gps.read({2, 2, 2}, {}, 0.0), Vec3(2, 2, 2));
}

TEST(Gps, NoiseIsZeroMeanish) {
  GpsSensor gps = make_sensor(1000.0, 1.0);
  gps.reset();
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += gps.read({0, 0, 0}, {}, i * 0.001).x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(Gps, NoiseIsDeterministicPerSeed) {
  GpsSensor a(GpsConfig{.rate_hz = 100.0, .noise_stddev = 0.5}, math::Rng(7));
  GpsSensor b(GpsConfig{.rate_hz = 100.0, .noise_stddev = 0.5}, math::Rng(7));
  a.reset();
  b.reset();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.read({0, 0, 0}, {}, i * 0.01), b.read({0, 0, 0}, {}, i * 0.01));
  }
}

}  // namespace
}  // namespace swarmfuzz::sim
