#include "sim/collision.h"

#include <gtest/gtest.h>

namespace swarmfuzz::sim {
namespace {

ObstacleField one_obstacle() {
  return ObstacleField({CylinderObstacle{{10, 0, 0}, 2.0}});
}

std::vector<DroneState> states_at(std::initializer_list<Vec3> positions) {
  std::vector<DroneState> states;
  for (const Vec3& p : positions) states.push_back({p, {}});
  return states;
}

TEST(Collision, RejectsNonPositiveRadius) {
  EXPECT_THROW(CollisionMonitor(0.0), std::invalid_argument);
}

TEST(Collision, NoCollisionWhenClear) {
  const CollisionMonitor monitor(0.3);
  const auto states = states_at({{0, 0, 0}, {0, 5, 0}});
  EXPECT_FALSE(monitor.check(states, {}, one_obstacle(), 1.0).has_value());
}

TEST(Collision, DroneObstacleContact) {
  const CollisionMonitor monitor(0.3);
  const auto states = states_at({{7.8, 0, 0}});  // 2.2 from centre, radius 2+0.3
  const auto event = monitor.check(states, {}, one_obstacle(), 3.5);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, CollisionKind::kDroneObstacle);
  EXPECT_EQ(event->drone, 0);
  EXPECT_EQ(event->other, 0);
  EXPECT_DOUBLE_EQ(event->time, 3.5);
}

TEST(Collision, JustOutsideThresholdIsSafe) {
  const CollisionMonitor monitor(0.3);
  const auto states = states_at({{7.69, 0, 0}});  // 2.31 > 2.3
  EXPECT_FALSE(monitor.check(states, {}, one_obstacle(), 0.0).has_value());
}

TEST(Collision, SweptSegmentCatchesTunnelling) {
  const CollisionMonitor monitor(0.3);
  // Drone jumped from one side of the obstacle to the other in one step.
  const auto states = states_at({{20, 0, 0}});
  const std::vector<Vec3> prev{{0, 0, 0}};
  const auto event = monitor.check(states, prev, one_obstacle(), 1.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, CollisionKind::kDroneObstacle);
}

TEST(Collision, NoSweepWithoutPreviousPositions) {
  const CollisionMonitor monitor(0.3);
  const auto states = states_at({{20, 0, 0}});
  EXPECT_FALSE(monitor.check(states, {}, one_obstacle(), 1.0).has_value());
}

TEST(Collision, DroneDroneContact) {
  const CollisionMonitor monitor(0.3);
  const auto states = states_at({{0, 0, 0}, {0.5, 0, 0}, {5, 5, 5}});
  const auto event = monitor.check(states, {}, ObstacleField{}, 2.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, CollisionKind::kDroneDrone);
  EXPECT_EQ(event->drone, 0);
  EXPECT_EQ(event->other, 1);
}

TEST(Collision, DroneDroneUsesFullDistance) {
  const CollisionMonitor monitor(0.3);
  // Horizontal overlap but 10 m apart vertically: no collision.
  const auto states = states_at({{0, 0, 0}, {0.1, 0, 10}});
  EXPECT_FALSE(monitor.check(states, {}, ObstacleField{}, 0.0).has_value());
}

TEST(Collision, ObstacleCheckedBeforeDroneDrone) {
  const CollisionMonitor monitor(0.3);
  // Both kinds present; obstacle contact is reported (checked first).
  const auto states = states_at({{8, 0, 0}, {8.2, 0, 0}});
  const auto event = monitor.check(states, {}, one_obstacle(), 0.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, CollisionKind::kDroneObstacle);
}

}  // namespace
}  // namespace swarmfuzz::sim
