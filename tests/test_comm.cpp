#include "swarm/comm.h"

#include <gtest/gtest.h>

namespace swarmfuzz::swarm {
namespace {

sim::WorldSnapshot three_drone_broadcast() {
  sim::WorldSnapshot snap;
  snap.time = 1.0;
  snap.push_back({0, {0, 0, 10}, {1, 0, 0}});
  snap.push_back({1, {20, 0, 10}, {0, 1, 0}});
  snap.push_back({2, {100, 0, 10}, {0, 0, 1}});
  return snap;
}

TEST(Comm, RejectsInvalidConfig) {
  EXPECT_THROW(CommModel(CommConfig{.range = 0.0}), std::invalid_argument);
  EXPECT_THROW(CommModel(CommConfig{.drop_probability = 1.0}), std::invalid_argument);
  EXPECT_THROW(CommModel(CommConfig{.drop_probability = -0.1}), std::invalid_argument);
}

TEST(Comm, PerfectCommDeliversEverything) {
  CommModel comm;
  comm.reset(1);
  const auto view = comm.filter(three_drone_broadcast(), 0);
  EXPECT_EQ(view.size(), 3);
  EXPECT_DOUBLE_EQ(view.time, 1.0);
}

TEST(Comm, SelfIsAlwaysFirst) {
  CommModel comm;
  comm.reset(1);
  const auto view = comm.filter(three_drone_broadcast(), 1);
  ASSERT_FALSE(view.empty());
  EXPECT_EQ(view.id[0], 1);
}

TEST(Comm, RangeLimitsNeighbours) {
  CommModel comm(CommConfig{.range = 50.0});
  comm.reset(1);
  const auto view = comm.filter(three_drone_broadcast(), 0);
  // Drone 2 at 100 m is out of range; drone 1 at 20 m is in.
  ASSERT_EQ(view.size(), 2);
  EXPECT_EQ(view.id[1], 1);
}

TEST(Comm, RangeUsesBroadcastGps) {
  // A spoofed fix can pull a drone out of perceived range.
  CommModel comm(CommConfig{.range = 50.0});
  comm.reset(1);
  auto broadcast = three_drone_broadcast();
  broadcast.gps_position[1] = {90, 0, 10};  // fix claims it is far
  const auto view = comm.filter(broadcast, 0);
  EXPECT_EQ(view.size(), 1);  // only self remains
}

TEST(Comm, DropsAreRandomButSeedDeterministic) {
  CommModel a(CommConfig{.drop_probability = 0.5});
  CommModel b(CommConfig{.drop_probability = 0.5});
  a.reset(99);
  b.reset(99);
  const auto broadcast = three_drone_broadcast();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.filter(broadcast, 0).size(), b.filter(broadcast, 0).size());
  }
}

TEST(Comm, DropRateApproximatelyMatchesProbability) {
  CommModel comm(CommConfig{.drop_probability = 0.3});
  comm.reset(7);
  const auto broadcast = three_drone_broadcast();
  int delivered = 0;
  const int rounds = 2000;
  for (int i = 0; i < rounds; ++i) {
    delivered += comm.filter(broadcast, 0).size() - 1;
  }
  const double rate = static_cast<double>(delivered) / (2.0 * rounds);
  EXPECT_NEAR(rate, 0.7, 0.05);
}

TEST(Comm, SelfNeverDropped) {
  CommModel comm(CommConfig{.drop_probability = 0.9});
  comm.reset(3);
  for (int i = 0; i < 100; ++i) {
    const auto view = comm.filter(three_drone_broadcast(), 2);
    ASSERT_GE(view.size(), 1);
    EXPECT_EQ(view.id[0], 2);
  }
}

TEST(Comm, UnknownSelfIdThrows) {
  CommModel comm;
  comm.reset(1);
  EXPECT_THROW((void)comm.filter(three_drone_broadcast(), 9), std::invalid_argument);
}

}  // namespace
}  // namespace swarmfuzz::swarm
