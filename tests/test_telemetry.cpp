#include "fuzz/telemetry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>

#include "fuzz/campaign.h"

namespace swarmfuzz::fuzz {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path{::testing::TempDir()} /
          ("swarmfuzz_telemetry_" + name))
      .string();
}

// Awkward doubles (non-terminating binary fractions, negatives, tiny
// magnitudes) that %.10g would mangle; %.17g must round-trip them exactly.
TelemetryRecord sample_record() {
  TelemetryRecord record;
  record.mission_index = 7;
  record.fuzzer = "SwarmFuzz";
  record.mission_seed = 0xdeadbeefcafebabeull;
  record.wall_time_s = 1.0 / 3.0;
  record.result.found = true;
  record.result.victim = 4;
  record.result.victim_vdo = 0.1 + 0.2;
  record.result.iterations = 9;
  record.result.simulations = 41;
  // Beyond 32 bits, to exercise the int64 JSON path.
  record.result.sim_steps_executed = 123456789012345ll;
  record.result.prefix_steps_reused = 98765432109876ll;
  record.result.mission_vdo = 2.2250738585072014e-305;
  record.result.clean_mission_time = 98.30000000000001;
  record.result.plan = attack::SpoofingPlan{.target = 1,
                                            .direction = attack::SpoofDirection::kLeft,
                                            .start_time = 12.700000000000001,
                                            .duration = 1.0 / 7.0,
                                            .distance = 10.0};
  record.result.attempts.push_back(SeedAttempt{
      Seed{.target = 1, .victim = 4, .direction = attack::SpoofDirection::kLeft,
           .vdo = 2.25, .influence = 0.45000000000000007},
      OptimizationResult{.success = true, .stalled = false, .t_start = 12.5,
                         .duration = 8.0, .best_f = -0.010000000000000002,
                         .crashed_drone = 4, .iterations = 7}});
  record.result.attempts.push_back(SeedAttempt{
      Seed{.target = 3, .victim = 0, .direction = attack::SpoofDirection::kRight,
           .vdo = 1.0 / 3.0, .influence = -0.0},
      OptimizationResult{.success = false, .stalled = true, .t_start = 0.0,
                         .duration = 0.0, .best_f = 3.5, .crashed_drone = -1,
                         .iterations = 20}});
  return record;
}

MissionOutcome outcome_from(const TelemetryRecord& record) {
  return MissionOutcome{.mission_index = record.mission_index,
                        .completed = true,
                        .mission_seed = record.mission_seed,
                        .wall_time_s = record.wall_time_s,
                        .result = record.result};
}

TEST(Telemetry, JsonlRoundTripIsExact) {
  const TelemetryRecord original = sample_record();
  const std::string line = to_jsonl(original);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const TelemetryRecord parsed = telemetry_record_from_json(line);
  EXPECT_EQ(parsed.schema_version, original.schema_version);
  EXPECT_EQ(parsed.mission_index, original.mission_index);
  EXPECT_EQ(parsed.fuzzer, original.fuzzer);
  EXPECT_EQ(parsed.mission_seed, original.mission_seed);
  EXPECT_EQ(parsed.wall_time_s, original.wall_time_s);
  // deterministic_equal compares every FuzzResult field with exact ==.
  EXPECT_TRUE(deterministic_equal(outcome_from(original), outcome_from(parsed)));
  // And the round-trip is a fixed point at the text level too.
  EXPECT_EQ(to_jsonl(parsed), line);
}

TEST(Telemetry, StepCountersRoundTrip) {
  // deterministic_equal deliberately ignores the step counters (performance
  // accounting), so pin their round-trip explicitly.
  const TelemetryRecord original = sample_record();
  const TelemetryRecord parsed = telemetry_record_from_json(to_jsonl(original));
  EXPECT_EQ(parsed.result.sim_steps_executed, original.result.sim_steps_executed);
  EXPECT_EQ(parsed.result.prefix_steps_reused, original.result.prefix_steps_reused);
}

// Drops the trailing `,"crc":"xxxxxxxx"` member, turning a framed record
// into the byte layout written before checksum framing existed.
std::string strip_crc_frame(std::string line) {
  const size_t begin = line.rfind(",\"crc\":\"");
  EXPECT_NE(begin, std::string::npos);
  line.erase(begin, line.size() - 1 - begin);  // keep the closing '}'
  return line;
}

TEST(Telemetry, LegacyRecordWithoutStepCountersParses) {
  // Records written before the step counters existed lack the fields
  // entirely (and predate CRC framing); they must parse (same schema
  // version) with both counters 0.
  std::string line = strip_crc_frame(to_jsonl(sample_record()));
  for (const std::string key : {"sim_steps_executed", "prefix_steps_reused"}) {
    const size_t begin = line.find("\"" + key + "\":");
    ASSERT_NE(begin, std::string::npos);
    const size_t end = line.find(',', begin) + 1;  // through trailing comma
    line.erase(begin, end - begin);
  }
  const TelemetryRecord parsed = telemetry_record_from_json(line);
  EXPECT_EQ(parsed.result.sim_steps_executed, 0);
  EXPECT_EQ(parsed.result.prefix_steps_reused, 0);
  EXPECT_EQ(parsed.result.simulations, 41);  // neighbours unaffected
}

TEST(Telemetry, RecordsAreCrcFramed) {
  const std::string line = to_jsonl(sample_record());
  // The checksum is the final member: 8 lowercase hex digits.
  ASSERT_GE(line.size(), 18u);
  EXPECT_EQ(line.substr(line.size() - 18, 8), ",\"crc\":\"");
  EXPECT_EQ(line.substr(line.size() - 2), "\"}");
  for (size_t i = line.size() - 10; i < line.size() - 2; ++i) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(line[i])));
  }
}

TEST(Telemetry, UnframedLegacyLineStillParses) {
  const std::string line = strip_crc_frame(to_jsonl(sample_record()));
  const TelemetryRecord parsed = telemetry_record_from_json(line);
  EXPECT_TRUE(deterministic_equal(outcome_from(sample_record()),
                                  outcome_from(parsed)));
}

TEST(Telemetry, CorruptedFramedRecordIsRejected) {
  // Flip one payload byte while leaving the structure valid JSON: the
  // checksum must catch it even though a plain parse would succeed.
  std::string line = to_jsonl(sample_record());
  const size_t pos = line.find("\"simulations\":41");
  ASSERT_NE(pos, std::string::npos);
  line[pos + 15] = '2';  // 41 -> 42
  EXPECT_THROW((void)telemetry_record_from_json(line), std::invalid_argument);
}

TEST(Telemetry, FaultFieldsRoundTripAndStayOffCleanRecords) {
  // Fault-free records must remain byte-compatible with the pre-fault
  // schema: no fault members at all.
  const std::string clean_line = to_jsonl(sample_record());
  EXPECT_EQ(clean_line.find("\"fault\""), std::string::npos);

  TelemetryRecord faulted = sample_record();
  faulted.fault = sim::FaultKind::kTimeout;
  faulted.fault_detail = "wall-clock deadline exceeded";
  faulted.fault_attempts = 3;
  const TelemetryRecord parsed = telemetry_record_from_json(to_jsonl(faulted));
  EXPECT_EQ(parsed.fault, sim::FaultKind::kTimeout);
  EXPECT_EQ(parsed.fault_detail, faulted.fault_detail);
  EXPECT_EQ(parsed.fault_attempts, 3);
}

TEST(Telemetry, ShardFieldRoundTripsAndStaysOffSingleProcessRecords) {
  // Single-process records (shard = -1) must remain byte-compatible with
  // pre-shard-schema files: no shard member at all.
  const std::string plain_line = to_jsonl(sample_record());
  EXPECT_EQ(plain_line.find("\"shard\""), std::string::npos);
  EXPECT_EQ(telemetry_record_from_json(plain_line).shard, -1);

  TelemetryRecord sharded = sample_record();
  sharded.shard = 5;
  const std::string line = to_jsonl(sharded);
  EXPECT_NE(line.find("\"shard\":5"), std::string::npos);
  const TelemetryRecord parsed = telemetry_record_from_json(line);
  EXPECT_EQ(parsed.shard, 5);
  // The shard stamp never perturbs the deterministic payload.
  EXPECT_TRUE(deterministic_equal(outcome_from(sample_record()),
                                  outcome_from(parsed)));
}

TEST(Telemetry, NonFiniteMissionVdoRoundTripsAsNull) {
  // A diverged clean run records mission_vdo = NaN; the line must stay
  // valid JSON (null, not a bare nan token) and read back as NaN.
  TelemetryRecord record = sample_record();
  record.result.mission_vdo = std::numeric_limits<double>::quiet_NaN();
  const std::string line = to_jsonl(record);
  EXPECT_EQ(line.find("nan"), std::string::npos);
  EXPECT_NE(line.find("\"mission_vdo\":null"), std::string::npos);
  const TelemetryRecord parsed = telemetry_record_from_json(line);
  EXPECT_TRUE(std::isnan(parsed.result.mission_vdo));
}

TEST(Telemetry, QuarantineRecordRoundTrips) {
  const QuarantineRecord original{.mission_index = 12,
                                  .fuzzer = "SwarmFuzz",
                                  .mission_seed = 0xfeedface12345678ull,
                                  .config_hash = "00c0ffee00c0ffee",
                                  .fault = sim::FaultKind::kNumericalDivergence,
                                  .detail = "non-finite velocity",
                                  .attempts = 3};
  const std::string line = to_jsonl(original);
  const QuarantineRecord parsed = quarantine_record_from_json(line);
  EXPECT_EQ(parsed.mission_index, original.mission_index);
  EXPECT_EQ(parsed.fuzzer, original.fuzzer);
  EXPECT_EQ(parsed.mission_seed, original.mission_seed);
  EXPECT_EQ(parsed.config_hash, original.config_hash);
  EXPECT_EQ(parsed.fault, original.fault);
  EXPECT_EQ(parsed.detail, original.detail);
  EXPECT_EQ(parsed.attempts, original.attempts);

  const std::string path = temp_path("quarantine.jsonl");
  std::remove(path.c_str());
  append_jsonl_line(path, line);
  append_jsonl_line(path, line);
  EXPECT_EQ(load_quarantine(path).size(), 2u);
  std::remove(path.c_str());
}

TEST(Telemetry, MalformedLineThrows) {
  EXPECT_THROW((void)telemetry_record_from_json("{\"v\":1"), std::invalid_argument);
  EXPECT_THROW((void)telemetry_record_from_json("{}"), std::invalid_argument);
  EXPECT_THROW((void)telemetry_record_from_json("{\"v\":99}"),
               std::invalid_argument);
}

TEST(Telemetry, SinkWritesOneLinePerRecord) {
  const std::string path = temp_path("sink.jsonl");
  {
    JsonlTelemetrySink sink(path, /*append=*/false);
    TelemetryRecord record = sample_record();
    sink.record(record);
    record.mission_index = 8;
    sink.record(record);
  }
  const auto records = load_telemetry(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].mission_index, 7);
  EXPECT_EQ(records[1].mission_index, 8);
  std::remove(path.c_str());
}

TEST(Telemetry, SinkIsThreadSafe) {
  const std::string path = temp_path("concurrent.jsonl");
  {
    JsonlTelemetrySink sink(path, /*append=*/false);
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
      writers.emplace_back([&sink, t] {
        TelemetryRecord record = sample_record();
        for (int i = 0; i < 25; ++i) {
          record.mission_index = t * 25 + i;
          sink.record(record);
        }
      });
    }
    for (std::thread& w : writers) w.join();
  }
  // Interleaved writers must still produce 100 individually parseable lines.
  EXPECT_EQ(load_telemetry(path).size(), 100u);
  std::remove(path.c_str());
}

TEST(Telemetry, LoadSkipsTornTrailingLine) {
  const std::string path = temp_path("torn.jsonl");
  {
    std::ofstream out(path);
    out << to_jsonl(sample_record()) << "\n";
    const std::string full = to_jsonl(sample_record());
    out << full.substr(0, full.size() / 2);  // crash mid-write: no newline
  }
  const auto records = load_telemetry(path);
  EXPECT_EQ(records.size(), 1u);
  std::remove(path.c_str());
}

TEST(Telemetry, SinkHealsTornTailOnAppend) {
  // A crash mid-write leaves an unterminated fragment; reopening the sink
  // in append mode must truncate the fragment so the next record starts on
  // a clean line boundary instead of concatenating into garbage.
  const std::string path = temp_path("heal.jsonl");
  {
    std::ofstream out(path);
    out << to_jsonl(sample_record()) << "\n";
    const std::string full = to_jsonl(sample_record());
    out << full.substr(0, full.size() / 3);  // torn, no newline
  }
  {
    JsonlTelemetrySink sink(path, /*append=*/true);
    TelemetryRecord record = sample_record();
    record.mission_index = 9;
    sink.record(record);
  }
  const auto records = load_telemetry(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].mission_index, 7);
  EXPECT_EQ(records[1].mission_index, 9);
  std::remove(path.c_str());
}

TEST(Telemetry, LoadThrowsOnCorruptCompleteLine) {
  const std::string path = temp_path("corrupt.jsonl");
  {
    std::ofstream out(path);
    out << "{\"not a record\":true}\n";
    out << to_jsonl(sample_record()) << "\n";
  }
  EXPECT_THROW((void)load_telemetry(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Telemetry, LoadOfMissingFileIsEmpty) {
  EXPECT_TRUE(load_telemetry(temp_path("does_not_exist.jsonl")).empty());
}

// ---------------------------------------------------------------------------
// Checkpoint/resume through run_campaign.

CampaignConfig checkpoint_campaign(int missions = 6) {
  CampaignConfig config;
  config.num_missions = missions;
  config.mission.num_drones = 5;
  config.fuzzer.spoof_distance = 10.0;
  config.fuzzer.sim.dt = 0.05;
  config.fuzzer.sim.gps.rate_hz = 20.0;
  config.fuzzer.mission_budget = 12;  // keep tests fast
  config.num_threads = 2;
  return config;
}

TEST(Checkpoint, EmitsOneRecordPerMission) {
  const std::string path = temp_path("emit.jsonl");
  std::remove(path.c_str());
  CampaignConfig config = checkpoint_campaign();
  config.checkpoint_path = path;
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.num_completed(), config.num_missions);

  const auto records = load_telemetry(path);
  ASSERT_EQ(records.size(), static_cast<size_t>(config.num_missions));
  std::vector<bool> seen(static_cast<size_t>(config.num_missions), false);
  for (const TelemetryRecord& record : records) {
    ASSERT_GE(record.mission_index, 0);
    ASSERT_LT(record.mission_index, config.num_missions);
    EXPECT_FALSE(seen[static_cast<size_t>(record.mission_index)]);
    seen[static_cast<size_t>(record.mission_index)] = true;
    EXPECT_EQ(record.fuzzer, fuzzer_kind_name(config.kind));
    EXPECT_GT(record.wall_time_s, 0.0);
    EXPECT_TRUE(deterministic_equal(
        outcome_from(record),
        result.outcomes[static_cast<size_t>(record.mission_index)]));
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, InterruptedThenResumedEqualsUninterrupted) {
  const std::string path = temp_path("resume.jsonl");
  std::remove(path.c_str());

  CampaignConfig config = checkpoint_campaign();
  const CampaignResult uninterrupted = run_campaign(config);

  // "Kill" the campaign after 2 of 6 missions...
  CampaignConfig partial = config;
  partial.checkpoint_path = path;
  partial.max_new_missions = 2;
  const CampaignResult killed = run_campaign(partial);
  EXPECT_EQ(killed.num_completed(), 2);
  EXPECT_EQ(load_telemetry(path).size(), 2u);

  // ...then resume at a different thread count: the merged result must be
  // bit-for-bit identical to the uninterrupted run's deterministic fields.
  CampaignConfig resumed_config = config;
  resumed_config.checkpoint_path = path;
  resumed_config.num_threads = 3;
  const CampaignResult resumed = run_campaign(resumed_config);
  EXPECT_EQ(resumed.num_completed(), config.num_missions);
  EXPECT_TRUE(deterministic_equal(resumed, uninterrupted));

  // The checkpoint now covers the full campaign; a further resume runs
  // nothing new and still reconstructs the same result.
  const CampaignResult replayed = run_campaign(resumed_config);
  EXPECT_TRUE(deterministic_equal(replayed, uninterrupted));
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeToleratesTornTrailingLine) {
  const std::string path = temp_path("resume_torn.jsonl");
  std::remove(path.c_str());

  CampaignConfig config = checkpoint_campaign();
  const CampaignResult uninterrupted = run_campaign(config);

  CampaignConfig partial = config;
  partial.checkpoint_path = path;
  partial.max_new_missions = 3;
  (void)run_campaign(partial);
  {
    // Simulate a crash that tore the next record mid-write.
    std::ofstream out(path, std::ios::app);
    out << "{\"v\":1,\"index\":5,\"fuzz";
  }

  CampaignConfig resumed_config = config;
  resumed_config.checkpoint_path = path;
  const CampaignResult resumed = run_campaign(resumed_config);
  EXPECT_TRUE(deterministic_equal(resumed, uninterrupted));
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeAfterTruncationMidRecordRerunsOnlyThatMission) {
  // Kill-and-resume with the harshest failure: the process died while the
  // *last complete* record was being flushed, leaving it torn in half. The
  // resumed campaign must silently re-run exactly that mission and still be
  // bit-identical to an uninterrupted run.
  const std::string path = temp_path("truncate_mid.jsonl");
  std::remove(path.c_str());

  CampaignConfig config = checkpoint_campaign();
  const CampaignResult uninterrupted = run_campaign(config);

  CampaignConfig partial = config;
  partial.checkpoint_path = path;
  partial.max_new_missions = 3;
  (void)run_campaign(partial);
  const auto before = load_telemetry(path);
  ASSERT_EQ(before.size(), 3u);

  // Chop the file in the middle of the final record (newline included).
  const auto full_size = std::filesystem::file_size(path);
  const std::string last_line = to_jsonl(before.back());
  std::filesystem::resize_file(path, full_size - last_line.size() / 2);

  CampaignConfig resumed_config = config;
  resumed_config.checkpoint_path = path;
  const CampaignResult resumed = run_campaign(resumed_config);
  EXPECT_EQ(resumed.num_completed(), config.num_missions);
  EXPECT_TRUE(deterministic_equal(resumed, uninterrupted));
  // The healed checkpoint holds one record per mission again.
  EXPECT_EQ(load_telemetry(path).size(),
            static_cast<size_t>(config.num_missions));
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedCampaignIsRejected) {
  const std::string path = temp_path("mismatch.jsonl");
  std::remove(path.c_str());

  CampaignConfig config = checkpoint_campaign();
  config.checkpoint_path = path;
  config.max_new_missions = 2;
  (void)run_campaign(config);

  // Same file, different base seed: the records cannot belong to this
  // campaign and resuming must fail loudly instead of fabricating results.
  CampaignConfig other = config;
  other.base_seed = config.base_seed + 1;
  EXPECT_THROW((void)run_campaign(other), std::runtime_error);

  // The rejected resume must not have truncated the checkpoint: the original
  // campaign's records are still there and the original config still resumes.
  EXPECT_EQ(load_telemetry(path).size(), 2u);
  config.max_new_missions = 0;
  const CampaignResult resumed = run_campaign(config);
  EXPECT_EQ(resumed.num_completed(), config.num_missions);
  std::remove(path.c_str());
}

TEST(Checkpoint, FreshStartTruncatesExistingRecords) {
  const std::string path = temp_path("fresh.jsonl");
  std::remove(path.c_str());

  CampaignConfig config = checkpoint_campaign();
  config.checkpoint_path = path;
  config.max_new_missions = 2;
  (void)run_campaign(config);
  EXPECT_EQ(load_telemetry(path).size(), 2u);

  config.resume = false;
  config.max_new_missions = 3;
  (void)run_campaign(config);
  // Old records were discarded: only this run's three missions remain.
  EXPECT_EQ(load_telemetry(path).size(), 3u);
  std::remove(path.c_str());
}

TEST(Checkpoint, SecondarySinkSeesOnlyFreshMissions) {
  class CountingSink final : public TelemetrySink {
   public:
    void record(const TelemetryRecord&) override { ++count; }
    int count = 0;
  };
  const std::string path = temp_path("secondary.jsonl");
  std::remove(path.c_str());

  CampaignConfig config = checkpoint_campaign();
  config.checkpoint_path = path;
  config.max_new_missions = 2;
  CountingSink first;
  config.telemetry = &first;
  (void)run_campaign(config);
  EXPECT_EQ(first.count, 2);

  CountingSink second;
  config.telemetry = &second;
  config.max_new_missions = 0;
  (void)run_campaign(config);
  // Replayed missions are not re-emitted to the secondary sink.
  EXPECT_EQ(second.count, config.num_missions - 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swarmfuzz::fuzz
