// Adaptive coordinator tests (DESIGN.md section 16): health probing, the
// straggler classifiers (expired claim, stale heartbeat, progress stall,
// peer-rate percentile), the crash-safe re-carve protocol with its heal
// path, and the end-to-end guarantee — a hung straggler is fenced, its tail
// re-carved, and the finished service still merges bit-identical to a
// single-process campaign. Everything runs on an injected clock.
#include "fuzz/coordinator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "fuzz/service.h"
#include "fuzz/shard_merge.h"
#include "fuzz/telemetry.h"

namespace swarmfuzz::fuzz {
namespace {

std::string service_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path{::testing::TempDir()} / ("swarmfuzz_coord_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

CampaignConfig small_campaign(int missions = 6) {
  CampaignConfig config;
  config.num_missions = missions;
  config.mission.num_drones = 5;
  config.fuzzer.spoof_distance = 10.0;
  config.fuzzer.sim.dt = 0.05;
  config.fuzzer.sim.gps.rate_hz = 20.0;
  config.fuzzer.mission_budget = 12;  // keep tests fast
  config.num_threads = 2;
  return config;
}

// A minimal shard record for `index`, good enough for recorded_prefix (which
// only reads mission indices, never validates against a campaign).
void append_stub_record(const std::string& dir, int lease_id, int index) {
  TelemetryRecord record;
  record.mission_index = index;
  record.fuzzer = "swarmfuzz";
  record.shard = lease_id;
  append_jsonl_line(shard_telemetry_path(dir, lease_id), to_jsonl(record));
}

CoordinatorConfig coordinator_config(const std::string& dir,
                                     std::int64_t* now,
                                     std::int64_t ttl_ms = 1000,
                                     std::int64_t poll_ms = 100) {
  CoordinatorConfig config;
  config.dir = dir;
  config.num_missions = 6;
  config.num_leases = 2;  // lease 0 = [0,3), lease 1 = [3,6)
  config.lease_ttl_ms = ttl_ms;
  config.poll_ms = poll_ms;
  config.clock = [now] { return *now; };
  config.sleep_ms = [now](std::int64_t ms) { *now += ms; };
  return config;
}

// ---------------------------------------------------------------------------
// Health probes and the --wait timeout report.

TEST(RecordedPrefix, CountsContiguousFromBegin) {
  const std::string dir = service_dir("prefix");
  const LeaseRange lease{.lease_id = 0, .begin = 2, .end = 7};
  EXPECT_EQ(recorded_prefix(dir, lease), 0);  // no shard file at all
  append_stub_record(dir, 0, 2);
  append_stub_record(dir, 0, 3);
  append_stub_record(dir, 0, 5);  // gap at 4: 5 is not part of the prefix
  EXPECT_EQ(recorded_prefix(dir, lease), 2);
  append_stub_record(dir, 0, 4);  // gap filled, prefix now runs through 5
  EXPECT_EQ(recorded_prefix(dir, lease), 4);
}

TEST(ProbeLeaseHealth, ReportsClaimExpiryAndHeartbeatAge) {
  const std::string dir = service_dir("probe");
  std::int64_t now = 0;
  LeaseStore owner(dir, 1000, "victim", [&now] { return now; });
  ASSERT_TRUE(owner.try_claim(0));  // expires at 1000
  owner.mark_done(1);
  const LeaseTable table = load_lease_table(dir, 6, 2);

  auto health = probe_lease_health(dir, table, 1000, /*now_ms=*/400);
  ASSERT_EQ(health.size(), 2u);
  EXPECT_TRUE(health[0].claimed);
  EXPECT_FALSE(health[0].expired);
  EXPECT_EQ(health[0].owner, "victim");
  EXPECT_EQ(health[0].last_renew_age_ms, 400);
  EXPECT_TRUE(health[1].done);
  EXPECT_EQ(health[1].recorded, 3);  // done implies fully recorded

  health = probe_lease_health(dir, table, 1000, /*now_ms=*/1500);
  EXPECT_TRUE(health[0].expired);
  EXPECT_EQ(health[0].last_renew_age_ms, 1500);
}

TEST(DescribeIncompleteLeases, NamesOwnerAndHeartbeatAge) {
  const std::string dir = service_dir("describe");
  std::int64_t now = 0;
  LeaseStore owner(dir, 1000, "victim", [&now] { return now; });
  ASSERT_TRUE(owner.try_claim(0));
  const LeaseTable table = load_lease_table(dir, 6, 2);
  const std::string report =
      describe_incomplete_leases(probe_lease_health(dir, table, 1000, 1500));
  EXPECT_NE(report.find("lease 0"), std::string::npos);
  EXPECT_NE(report.find("victim"), std::string::npos);
  EXPECT_NE(report.find("expired"), std::string::npos);
  EXPECT_NE(report.find("1.5s ago"), std::string::npos);
  EXPECT_NE(report.find("unclaimed"), std::string::npos);  // lease 1

  // All done -> nothing to report.
  owner.mark_done(0);
  owner.mark_done(1);
  EXPECT_TRUE(
      describe_incomplete_leases(probe_lease_health(dir, table, 1000, 1500))
          .empty());
}

// ---------------------------------------------------------------------------
// Tick classification and the re-carve protocol.

TEST(CoordinatorTick, LeavesUnclaimedAndHealthyLeasesAlone) {
  const std::string dir = service_dir("healthy");
  std::int64_t now = 0;
  Coordinator coordinator(coordinator_config(dir, &now));
  LeaseStore worker(dir, 1000, "worker", [&now] { return now; });
  ASSERT_TRUE(worker.try_claim(0));
  for (int i = 0; i < 5; ++i) {
    const CoordinatorTickResult result = coordinator.tick();
    EXPECT_TRUE(result.recarved.empty());
    EXPECT_FALSE(result.complete);
    now += 100;
    ASSERT_TRUE(worker.renew(0));
  }
  EXPECT_EQ(coordinator.stats().recarves, 0);
}

TEST(CoordinatorTick, RecarvesExpiredClaimImmediately) {
  const std::string dir = service_dir("expired");
  std::int64_t now = 0;
  LeaseStore victim(dir, 1000, "victim", [&now] { return now; });
  ASSERT_TRUE(victim.try_claim(0));
  append_stub_record(dir, 0, 0);  // one mission recorded before death
  now = 1500;                     // claim lapsed: the worker is dead

  Coordinator coordinator(coordinator_config(dir, &now));
  const CoordinatorTickResult result = coordinator.tick();
  ASSERT_EQ(result.recarved.size(), 1u);
  EXPECT_EQ(result.recarved[0], 0);
  EXPECT_EQ(coordinator.stats().recarves, 1);
  EXPECT_EQ(coordinator.stats().subleases, 2);

  // The unfinished tail [1,3) is covered by fresh sub-leases; the recorded
  // prefix [0,1) is not — its record already merges from shard-0.jsonl.
  const LeaseTable table = load_lease_table(dir, 6, 2);
  ASSERT_EQ(table.retired.size(), 1u);
  EXPECT_EQ(table.retired[0].lease_id, 0);
  ASSERT_EQ(table.active.size(), 3u);  // lease 1 plus two subs
  EXPECT_EQ(table.active[1].lease_id, 2);
  EXPECT_EQ(table.active[1].begin, 1);
  EXPECT_EQ(table.active[2].end, 3);
  EXPECT_TRUE(std::filesystem::exists(recarved_marker_path(dir, 0)));
}

TEST(CoordinatorTick, RecarvesStaleHeartbeatBeforeExpiry) {
  const std::string dir = service_dir("stale");
  std::int64_t now = 0;
  // Long TTL: a SIGSTOPped worker's claim stays valid for a long time, but
  // its heartbeat age crosses stale_heartbeat_periods x (ttl/3) well before
  // expiry, so the coordinator acts early.
  LeaseStore victim(dir, 30000, "victim", [&now] { return now; });
  ASSERT_TRUE(victim.try_claim(0));
  now = 26000;  // not expired (30000), but age 26000 > 2.5 * 10000

  Coordinator coordinator(coordinator_config(dir, &now, /*ttl_ms=*/30000));
  const CoordinatorTickResult result = coordinator.tick();
  ASSERT_EQ(result.recarved.size(), 1u);
  // The revived victim is fenced: its late renewal must fail.
  EXPECT_FALSE(victim.renew(0));
}

TEST(CoordinatorTick, RecarvesProgressStallAgainstOwnPace) {
  const std::string dir = service_dir("stall");
  std::int64_t now = 0;
  LeaseStore victim(dir, 1000, "victim", [&now] { return now; });
  ASSERT_TRUE(victim.try_claim(0));

  Coordinator coordinator(coordinator_config(dir, &now));
  // Establish a pace of one mission per 100 ms poll...
  (void)coordinator.tick();
  now += 100;
  ASSERT_TRUE(victim.renew(0));
  append_stub_record(dir, 0, 0);
  (void)coordinator.tick();
  now += 100;
  ASSERT_TRUE(victim.renew(0));
  append_stub_record(dir, 0, 1);
  (void)coordinator.tick();
  // ...then hang: the heartbeat stays fresh, progress stops. The stall
  // floor is max(stall_factor x 100 ms/mission, min_observations x poll) =
  // 500 ms of no progress.
  bool recarved = false;
  for (int i = 0; i < 8 && !recarved; ++i) {
    now += 100;
    if (!recarved) ASSERT_TRUE(victim.renew(0));
    recarved = !coordinator.tick().recarved.empty();
  }
  EXPECT_TRUE(recarved);
  EXPECT_FALSE(victim.renew(0));  // fenced
  // Only the unfinished tail [2,3) was re-carved (tail 1 -> one sub-lease).
  const LeaseTable table = load_lease_table(dir, 6, 2);
  ASSERT_EQ(table.active.size(), 2u);
  EXPECT_EQ(table.active[1].lease_id, 2);
  EXPECT_EQ(table.active[1].begin, 2);
  EXPECT_EQ(table.active[1].end, 3);
}

TEST(CoordinatorTick, HealsMarkerWithoutLedgerEntry) {
  const std::string dir = service_dir("heal");
  // A coordinator that died between marker and ledger entry: lease 0 is
  // unclaimable but its range is uncovered.
  std::fclose(std::fopen(recarved_marker_path(dir, 0).c_str(), "wbx"));
  std::int64_t now = 0;
  Coordinator coordinator(coordinator_config(dir, &now));
  const CoordinatorTickResult result = coordinator.tick();
  ASSERT_EQ(result.recarved.size(), 1u);
  EXPECT_EQ(coordinator.stats().heals, 1);
  const LeaseTable table = load_lease_table(dir, 6, 2);
  ASSERT_EQ(table.retired.size(), 1u);
  ASSERT_EQ(table.active.size(), 3u);  // coverage restored
  EXPECT_EQ(table.active[1].begin, 0);
  EXPECT_EQ(table.active[2].end, 3);
  // The heal is idempotent: the next tick has nothing left to repair.
  EXPECT_TRUE(coordinator.tick().recarved.empty());
  EXPECT_EQ(coordinator.stats().heals, 1);
}

TEST(CoordinatorTick, MinRecarveMissionsGuardsTinyTails) {
  const std::string dir = service_dir("tiny_tail");
  std::int64_t now = 0;
  LeaseStore victim(dir, 1000, "victim", [&now] { return now; });
  ASSERT_TRUE(victim.try_claim(0));
  append_stub_record(dir, 0, 0);
  append_stub_record(dir, 0, 1);  // tail is a single mission
  now = 1500;                     // even though the claim expired...

  CoordinatorConfig config = coordinator_config(dir, &now);
  config.min_recarve_missions = 2;  // ...a 1-mission tail is not worth it
  Coordinator coordinator(config);
  EXPECT_TRUE(coordinator.tick().recarved.empty());
  EXPECT_EQ(coordinator.stats().recarves, 0);
}

TEST(CoordinatorRun, TimesOutOnAStuckService) {
  const std::string dir = service_dir("timeout");
  std::int64_t now = 0;
  Coordinator coordinator(coordinator_config(dir, &now));
  // Nothing claims the leases and nothing completes them: run() must give
  // up at the timeout instead of spinning forever.
  EXPECT_FALSE(coordinator.run(/*timeout_ms=*/500));
  EXPECT_GE(coordinator.stats().polls, 5);
}

// ---------------------------------------------------------------------------
// End to end: a hung straggler is classified, fenced and re-carved, and the
// finished service still merges bit-identical to a single-process run.

TEST(CoordinatorEndToEnd, HungStragglerIsRescuedAndMergeIsBitIdentical) {
  const CampaignConfig campaign = small_campaign();

  // Reference shard records (and the golden result) from clean runs.
  const std::string ref_dir = service_dir("e2e_ref");
  std::int64_t ref_now = 0;
  ShardWorkerConfig ref;
  ref.campaign = campaign;
  ref.dir = ref_dir;
  ref.num_leases = 1;
  ref.owner = "ref";
  ref.clock = [&ref_now] { return ref_now; };
  ref.sleep_ms = [&ref_now](std::int64_t ms) { ref_now += ms; };
  (void)run_shard_worker(ref);
  const auto ref_records = load_telemetry(shard_telemetry_path(ref_dir, 0));
  ASSERT_EQ(ref_records.size(), static_cast<std::size_t>(campaign.num_missions));

  // The crash scene: a victim claimed lease 0 = [0,3), recorded missions 0
  // and 1 at a steady pace, then hung with a live heartbeat — the failure
  // passive TTL reclamation can never recover from.
  const std::string dir = service_dir("e2e");
  std::int64_t now = 0;
  LeaseStore victim(dir, 1000, "victim", [&now] { return now; });
  ASSERT_TRUE(victim.try_claim(0));

  Coordinator coordinator(coordinator_config(dir, &now));
  (void)coordinator.tick();
  for (int mission = 0; mission < 2; ++mission) {
    now += 100;
    ASSERT_TRUE(victim.renew(0));
    append_jsonl_line(shard_telemetry_path(dir, 0), to_jsonl(ref_records[mission]));
    (void)coordinator.tick();
  }
  int ticks = 0;
  while (coordinator.stats().recarves == 0 && ticks++ < 20) {
    now += 100;
    (void)victim.renew(0);  // the hung worker's heartbeat stays alive
    (void)coordinator.tick();
  }
  ASSERT_EQ(coordinator.stats().recarves, 1);
  EXPECT_FALSE(victim.renew(0));  // fenced: its in-flight result is dropped

  // A healthy worker now finishes the service: lease 1 plus the sub-lease
  // covering the straggler's tail. The retired lease 0 is never reclaimed.
  ShardWorkerConfig finisher;
  finisher.campaign = campaign;
  finisher.dir = dir;
  finisher.num_leases = 2;
  finisher.lease_ttl_ms = 1000;
  finisher.owner = "finisher";
  finisher.clock = [&now] { return now; };
  finisher.sleep_ms = [&now](std::int64_t ms) { now += ms; };
  const ShardWorkerStats stats = run_shard_worker(finisher);
  EXPECT_EQ(stats.leases_claimed, 2);
  EXPECT_EQ(stats.missions_run, 4);  // missions 2..5; 0 and 1 are durable
  EXPECT_TRUE(service_complete(dir, campaign.num_missions, 2));
  EXPECT_TRUE(coordinator.tick().complete);

  ShardMergeStats merge_stats;
  const CampaignResult merged =
      merge_shards(campaign, dir, /*allow_partial=*/false, &merge_stats);
  EXPECT_EQ(merge_stats.records, campaign.num_missions);
  EXPECT_EQ(merge_stats.duplicates, 0);
  EXPECT_TRUE(deterministic_equal(merged, run_campaign(campaign)));
}

}  // namespace
}  // namespace swarmfuzz::fuzz
