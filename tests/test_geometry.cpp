#include "math/geometry.h"

#include <gtest/gtest.h>

namespace swarmfuzz::math {
namespace {

TEST(Geometry, DistanceToCylinderSigned) {
  const Vec3 center{0, 0, 0};
  EXPECT_DOUBLE_EQ(distance_to_cylinder({5, 0, 10}, center, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(distance_to_cylinder({1, 0, 0}, center, 2.0), -1.0);  // inside
  EXPECT_DOUBLE_EQ(distance_to_cylinder({0, 2, 7}, center, 2.0), 0.0);   // surface
}

TEST(Geometry, DistanceIgnoresHeight) {
  EXPECT_DOUBLE_EQ(distance_to_cylinder({3, 4, 100}, {0, 0, 0}, 1.0), 4.0);
}

TEST(Geometry, ClosestPointOnCylinderIsOnSurfaceAtQueryHeight) {
  const Vec3 p{10, 0, 7};
  const Vec3 c = closest_point_on_cylinder(p, {0, 0, 0}, 2.0);
  EXPECT_DOUBLE_EQ(c.x, 2.0);
  EXPECT_DOUBLE_EQ(c.y, 0.0);
  EXPECT_DOUBLE_EQ(c.z, 7.0);
}

TEST(Geometry, ClosestPointDegenerateAtAxisIsDeterministic) {
  const Vec3 c1 = closest_point_on_cylinder({0, 0, 5}, {0, 0, 0}, 3.0);
  const Vec3 c2 = closest_point_on_cylinder({0, 0, 5}, {0, 0, 0}, 3.0);
  EXPECT_EQ(c1, c2);
  EXPECT_DOUBLE_EQ((c1 - Vec3{0, 0, 5}).norm_xy(), 3.0);
}

TEST(Geometry, OutwardNormalIsUnitAndRadial) {
  const Vec3 n = cylinder_outward_normal({3, 4, 9}, {0, 0, 0});
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.y, 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(n.z, 0.0);
}

TEST(Geometry, LateralLeftIsPerpendicular) {
  const Vec3 heading{1, 0, 0};
  const Vec3 left = lateral_left(heading);
  EXPECT_EQ(left, Vec3(0, 1, 0));
  EXPECT_DOUBLE_EQ(left.dot(heading), 0.0);
  // For a vertical heading there is no lateral direction.
  EXPECT_EQ(lateral_left({0, 0, 1}), Vec3{});
}

TEST(Geometry, LateralLeftOfDiagonalHeading) {
  const Vec3 left = lateral_left({1, 1, 0});
  EXPECT_NEAR(left.norm(), 1.0, 1e-12);
  EXPECT_NEAR(left.x, -std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(left.y, std::sqrt(0.5), 1e-12);
}

TEST(Geometry, CosAngleXy) {
  const Vec3 axis{0, 1, 0};
  // Separation along the axis: |cos| = 1.
  EXPECT_NEAR(cos_angle_xy({0, 5, 0}, {0, 0, 0}, axis), 1.0, 1e-12);
  // Perpendicular separation: 0.
  EXPECT_NEAR(cos_angle_xy({5, 0, 0}, {0, 0, 0}, axis), 0.0, 1e-12);
  // 45 degrees.
  EXPECT_NEAR(cos_angle_xy({1, 1, 0}, {0, 0, 0}, axis), std::sqrt(0.5), 1e-12);
  // Sign-insensitive (absolute cosine).
  EXPECT_NEAR(cos_angle_xy({0, -5, 0}, {0, 0, 0}, axis), 1.0, 1e-12);
}

TEST(Geometry, CosAngleDegenerateInputsReturnZero) {
  EXPECT_DOUBLE_EQ(cos_angle_xy({1, 1, 0}, {1, 1, 0}, {0, 1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(cos_angle_xy({1, 0, 0}, {0, 0, 0}, {0, 0, 1}), 0.0);
}

TEST(Geometry, SegmentPointDistance) {
  const Vec3 a{0, 0, 0}, b{10, 0, 0};
  EXPECT_DOUBLE_EQ(segment_point_distance_xy(a, b, {5, 3, 0}), 3.0);   // mid
  EXPECT_DOUBLE_EQ(segment_point_distance_xy(a, b, {-4, 3, 0}), 5.0);  // before a
  EXPECT_DOUBLE_EQ(segment_point_distance_xy(a, b, {13, 4, 0}), 5.0);  // past b
  EXPECT_DOUBLE_EQ(segment_point_distance_xy(a, a, {3, 4, 0}), 5.0);   // degenerate
}

TEST(Geometry, SegmentSweepCatchesTunnelling) {
  // A point passing straight through the origin between two samples.
  const Vec3 before{-5, 0.1, 0}, after{5, 0.1, 0};
  EXPECT_NEAR(segment_point_distance_xy(before, after, {0, 0, 0}), 0.1, 1e-12);
}

TEST(Geometry, RadialSpeedSigns) {
  const Vec3 center{0, 0, 0};
  // Moving straight away: positive; straight toward: negative.
  EXPECT_DOUBLE_EQ(radial_speed_xy({5, 0, 0}, center, {2, 0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(radial_speed_xy({5, 0, 0}, center, {-3, 0, 0}), -3.0);
  // Tangential motion: zero.
  EXPECT_DOUBLE_EQ(radial_speed_xy({5, 0, 0}, center, {0, 4, 0}), 0.0);
  // At the centre: defined as zero.
  EXPECT_DOUBLE_EQ(radial_speed_xy(center, center, {1, 1, 0}), 0.0);
}

}  // namespace
}  // namespace swarmfuzz::math
