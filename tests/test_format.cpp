#include "util/format.h"

#include <gtest/gtest.h>

namespace swarmfuzz::util {
namespace {

TEST(Format, PlainTextPassesThrough) {
  EXPECT_EQ(format("no placeholders"), "no placeholders");
}

TEST(Format, SubstitutesInOrder) {
  EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(Format, MixedTypes) {
  EXPECT_EQ(format("{}/{}/{}", "a", 2, 3.5), "a/2/3.5");
}

TEST(Format, FixedPrecision) {
  EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(format("{:.0f}", 2.71), "3");
}

TEST(Format, PrecisionResetsBetweenPlaceholders) {
  EXPECT_EQ(format("{:.1f} {}", 1.25, 2.5), "1.2 2.5");
}

TEST(Format, WidthRightAligns) {
  EXPECT_EQ(format("{:4}", 7), "   7");
}

TEST(Format, EscapedBraces) {
  EXPECT_EQ(format("{{literal}} {}", 1), "{literal} 1");
}

TEST(Format, ExcessPlaceholdersRenderVerbatim) {
  EXPECT_EQ(format("{} {}", 1), "1 {}");
}

TEST(Format, ExcessArgumentsIgnored) {
  EXPECT_EQ(format("{}", 1, 2, 3), "1");
}

TEST(Format, MalformedPlaceholderEmittedAsIs) {
  EXPECT_EQ(format("tail {", 1), "tail {");
}

TEST(Format, NegativeNumbersAndZero) {
  EXPECT_EQ(format("{} {}", -5, 0), "-5 0");
  EXPECT_EQ(format("{:.1f}", -0.25), "-0.2");
}

}  // namespace
}  // namespace swarmfuzz::util
