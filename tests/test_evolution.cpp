// E_Fuzz end-to-end: determinism across eval-thread counts and prefix
// reuse, corpus persistence/resume, counter plumbing, degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"

namespace swarmfuzz::fuzz {
namespace {

FuzzerConfig fast_config(double spoof_distance = 10.0) {
  FuzzerConfig config;
  config.spoof_distance = spoof_distance;
  config.sim.dt = 0.05;
  config.sim.gps.rate_hz = 20.0;
  return config;
}

sim::MissionSpec mission_with(std::uint64_t seed, int drones = 5) {
  sim::MissionConfig config;
  config.num_drones = drones;
  return sim::generate_mission(config, seed);
}

std::string fresh_corpus_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path{::testing::TempDir()} / ("swarmfuzz_evo_" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), {}};
}

TEST(Evolutionary, KindNameAndFactory) {
  EXPECT_EQ(fuzzer_kind_name(FuzzerKind::kEvolutionary), "E_Fuzz");
  EXPECT_EQ(make_fuzzer(FuzzerKind::kEvolutionary, fast_config())->name(),
            "E_Fuzz");
}

TEST(Evolutionary, BitIdenticalAcrossEvalThreads) {
  // The determinism contract of the whole mode: for a fixed seed, the search
  // outcome AND the persisted corpus are bit-identical for any eval-thread
  // count (batch composition depends only on the RNG stream and corpus
  // state, both advancing in replay = submission order).
  const sim::MissionSpec mission = mission_with(1000);  // robust: full budget
  FuzzerConfig config = fast_config(10.0);
  config.mission_budget = 24;

  const std::string dir_serial = fresh_corpus_dir("serial");
  const std::string dir_pool = fresh_corpus_dir("pool");
  config.eval_threads = 1;
  config.evolution.corpus_dir = dir_serial;
  const FuzzResult serial =
      make_fuzzer(FuzzerKind::kEvolutionary, config)->fuzz(mission);
  config.eval_threads = 4;
  config.evolution.corpus_dir = dir_pool;
  const FuzzResult pooled =
      make_fuzzer(FuzzerKind::kEvolutionary, config)->fuzz(mission);

  EXPECT_TRUE(deterministic_equal(serial, pooled));
  EXPECT_EQ(serial.iterations, 24);
  const std::string file = "/corpus_" + std::to_string(mission.seed) + ".jsonl";
  EXPECT_EQ(slurp(dir_serial + file), slurp(dir_pool + file));
  std::filesystem::remove_all(dir_serial);
  std::filesystem::remove_all(dir_pool);
}

TEST(Evolutionary, BitIdenticalAcrossPrefixReuse) {
  const sim::MissionSpec mission = mission_with(1002);
  FuzzerConfig config = fast_config(10.0);
  config.mission_budget = 16;
  config.prefix_reuse = true;
  const FuzzResult with_prefix =
      make_fuzzer(FuzzerKind::kEvolutionary, config)->fuzz(mission);
  config.prefix_reuse = false;
  const FuzzResult without_prefix =
      make_fuzzer(FuzzerKind::kEvolutionary, config)->fuzz(mission);
  EXPECT_TRUE(deterministic_equal(with_prefix, without_prefix));
}

TEST(Evolutionary, PopulatesCorpusCounters) {
  FuzzerConfig config = fast_config(10.0);
  config.mission_budget = 16;
  const FuzzResult result =
      make_fuzzer(FuzzerKind::kEvolutionary, config)->fuzz(mission_with(1000));
  EXPECT_GT(result.corpus_size, 0);
  // After minimization each entry covers at least one exclusive bin.
  EXPECT_GE(result.novelty_bins, result.corpus_size);
  EXPECT_GE(result.corpus_admissions, result.corpus_size);
  EXPECT_EQ(result.iterations, 16);
  EXPECT_EQ(result.attempts_tried, 16);
  EXPECT_GT(result.simulations, 0);
}

TEST(Evolutionary, ResumesFromSavedCorpus) {
  const std::string dir = fresh_corpus_dir("resume");
  const sim::MissionSpec mission = mission_with(1000);
  FuzzerConfig config = fast_config(10.0);
  config.mission_budget = 16;
  config.evolution.corpus_dir = dir;
  const FuzzResult first =
      make_fuzzer(FuzzerKind::kEvolutionary, config)->fuzz(mission);
  ASSERT_GT(first.corpus_size, 0);

  const std::string path =
      dir + "/corpus_" + std::to_string(mission.seed) + ".jsonl";
  ASSERT_EQ(static_cast<int>(load_corpus(path).size()), first.corpus_size);

  // A second campaign over the same directory starts from the saved
  // population: its bin coverage can only grow.
  const FuzzResult second =
      make_fuzzer(FuzzerKind::kEvolutionary, config)->fuzz(mission);
  EXPECT_GE(second.novelty_bins, first.novelty_bins);
  EXPECT_EQ(static_cast<int>(load_corpus(path).size()), second.corpus_size);
  std::filesystem::remove_all(dir);
}

TEST(Evolutionary, MarksNoSeedsWithoutObstacles) {
  auto fuzzer = make_fuzzer(FuzzerKind::kEvolutionary, fast_config());
  sim::MissionSpec mission = mission_with(1002);
  mission.obstacles = sim::ObstacleField{};
  const FuzzResult result = fuzzer->fuzz(mission);
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.no_seeds);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.corpus_size, 0);
}

TEST(Evolutionary, RespectsMissionBudgetWithOddBatchSize) {
  FuzzerConfig config = fast_config(10.0);
  config.mission_budget = 10;
  config.evolution.batch_size = 4;  // budget is not a multiple of the batch
  const FuzzResult result =
      make_fuzzer(FuzzerKind::kEvolutionary, config)->fuzz(mission_with(1000));
  EXPECT_EQ(result.iterations, 10);
}

}  // namespace
}  // namespace swarmfuzz::fuzz
