#include "cli/commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "fuzz/service.h"
#include "fuzz/telemetry.h"
#include "swarm/controller.h"

namespace swarmfuzz::cli {
namespace {

util::Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"swarmfuzz"};
  argv.insert(argv.end(), args.begin(), args.end());
  return util::Options::parse(static_cast<int>(argv.size()), argv.data());
}

int run_dispatch(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"swarmfuzz"};
  argv.insert(argv.end(), args.begin(), args.end());
  return dispatch(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ControllerFactoryKnowsAllNames) {
  EXPECT_EQ(make_controller("vasarhelyi")->name(), "vasarhelyi");
  EXPECT_EQ(make_controller("vicsek")->name(), "vasarhelyi");
  EXPECT_EQ(make_controller("olfati")->name(), "olfati_saber");
  EXPECT_EQ(make_controller("olfati_saber")->name(), "olfati_saber");
  EXPECT_EQ(make_controller("reynolds")->name(), "reynolds");
  EXPECT_EQ(make_controller("boids")->name(), "reynolds");
  EXPECT_EQ(make_controller("")->name(), "vasarhelyi");
  EXPECT_THROW(make_controller("nonsense"), std::invalid_argument);
}

TEST(Cli, NoCommandPrintsUsage) {
  EXPECT_EQ(run_dispatch({}), 64);
}

TEST(Cli, UnknownCommandPrintsUsage) {
  EXPECT_EQ(run_dispatch({"frobnicate"}), 64);
}

TEST(Cli, BadOptionValueReportsError) {
  EXPECT_EQ(run_dispatch({"run", "--controller=nonsense"}), 1);
}

TEST(Cli, RunCommandCompletesCleanMission) {
  EXPECT_EQ(cmd_run(parse({"run", "--seed=1013"})), 0);
}

TEST(Cli, RunCommandWithEachController) {
  EXPECT_EQ(cmd_run(parse({"run", "--seed=1013", "--controller=olfati"})), 0);
  EXPECT_EQ(cmd_run(parse({"run", "--seed=1013", "--controller=reynolds"})), 0);
}

TEST(Cli, SvgCommandPrintsSeedpool) {
  EXPECT_EQ(cmd_svg(parse({"svg", "--seed=1013"})), 0);
}

TEST(Cli, ReplayCommandRunsPlan) {
  EXPECT_EQ(cmd_replay(parse({"replay", "--seed=1013", "--target=1",
                              "--start=20", "--duration=10", "--detect"})),
            0);
}

TEST(Cli, FuzzCommandFindsSpvOnVulnerableMission) {
  EXPECT_EQ(cmd_fuzz(parse({"fuzz", "--seed=1013", "--distance=10"})), 0);
}

TEST(Cli, CampaignCommandSmall) {
  EXPECT_EQ(cmd_campaign(parse({"campaign", "--missions=2", "--budget=6"})), 0);
}

TEST(Cli, CampaignCheckpointAndTelemetryFlags) {
  const std::string dir = ::testing::TempDir();
  const std::string checkpoint =
      (std::filesystem::path{dir} / "cli_checkpoint.jsonl").string();
  const std::string telemetry =
      (std::filesystem::path{dir} / "cli_telemetry.jsonl").string();
  std::remove(checkpoint.c_str());
  std::remove(telemetry.c_str());

  const std::string checkpoint_flag = "--checkpoint=" + checkpoint;
  const std::string telemetry_flag = "--telemetry=" + telemetry;
  EXPECT_EQ(cmd_campaign(parse({"campaign", "--missions=3", "--budget=6",
                                checkpoint_flag.c_str(), telemetry_flag.c_str(),
                                "--progress=false"})),
            0);
  EXPECT_EQ(fuzz::load_telemetry(checkpoint).size(), 3u);
  EXPECT_EQ(fuzz::load_telemetry(telemetry).size(), 3u);

  // Re-running with --resume replays the checkpoint instead of re-fuzzing:
  // the telemetry stream (which only sees fresh missions) gains no records.
  EXPECT_EQ(cmd_campaign(parse({"campaign", "--missions=3", "--budget=6",
                                checkpoint_flag.c_str(), telemetry_flag.c_str(),
                                "--resume", "--progress=false"})),
            0);
  EXPECT_EQ(fuzz::load_telemetry(checkpoint).size(), 3u);
  EXPECT_EQ(fuzz::load_telemetry(telemetry).size(), 3u);
  std::remove(checkpoint.c_str());
  std::remove(telemetry.c_str());
}

TEST(Cli, ResumeHolesRequiresDir) {
  EXPECT_EQ(run_dispatch({"resume-holes"}), 1);
}

TEST(Cli, ServeShardMergeResumeHolesRoundTrip) {
  const std::string dir =
      (std::filesystem::path{::testing::TempDir()} / "cli_service").string();
  std::filesystem::remove_all(dir);
  const std::string dir_flag = "--dir=" + dir;

  EXPECT_EQ(cmd_serve(parse({"serve", dir_flag.c_str(), "--missions=4",
                             "--budget=6", "--leases=2"})),
            0);

  // Nothing has run yet: a bounded merge --wait must time out, report the
  // unclaimed leases, and fail rather than emit a partial report.
  EXPECT_EQ(cmd_merge(parse({"merge", dir_flag.c_str(), "--wait",
                             "--wait-timeout=0.2", "--progress=false"})),
            1);

  // A malformed chaos plan is rejected at the CLI boundary.
  const std::string chaos_flag = "--chaos=bogus@x";
  EXPECT_EQ(run_dispatch({"shard", dir_flag.c_str(), chaos_flag.c_str()}), 1);

  // One worker drains both leases; coordinating over a finished service
  // returns success without re-carving anything.
  EXPECT_EQ(cmd_shard(parse({"shard", dir_flag.c_str(), "--owner=w1"})), 0);
  EXPECT_EQ(cmd_serve(parse({"serve", dir_flag.c_str(), "--missions=4",
                             "--budget=6", "--leases=2", "--coordinate",
                             "--coordinate-timeout=30"})),
            0);

  // A complete partial-tolerant merge leaves no holes manifest behind.
  EXPECT_EQ(cmd_merge(parse({"merge", dir_flag.c_str(), "--allow-partial",
                             "--progress=false"})),
            0);
  EXPECT_FALSE(std::filesystem::exists(fuzz::holes_path(dir)));

  // Lose one shard file: merge --allow-partial records the gap machine-
  // readably, resume-holes turns it back into claimable leases, and a second
  // worker finishes the campaign.
  std::filesystem::remove(dir + "/shard-1.jsonl");
  EXPECT_EQ(cmd_merge(parse({"merge", dir_flag.c_str(), "--allow-partial",
                             "--progress=false"})),
            0);
  EXPECT_TRUE(std::filesystem::exists(fuzz::holes_path(dir)));
  EXPECT_EQ(cmd_resume_holes(parse({"resume-holes", dir_flag.c_str()})), 0);
  EXPECT_EQ(cmd_shard(parse({"shard", dir_flag.c_str(), "--owner=w2"})), 0);
  EXPECT_EQ(cmd_merge(parse({"merge", dir_flag.c_str(), "--allow-partial",
                             "--progress=false"})),
            0);
  EXPECT_FALSE(std::filesystem::exists(fuzz::holes_path(dir)));
}

}  // namespace
}  // namespace swarmfuzz::cli
