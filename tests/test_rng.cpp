#include "math/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace swarmfuzz::math {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministicAndOrderInsensitive) {
  const Rng parent(7);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  Rng child1_again = parent.split(1);
  EXPECT_EQ(child1.next(), child1_again.next());
  EXPECT_NE(child1.next(), child2.next());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.split(5);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.15);  // mean of U(-3,5) is 1
}

TEST(Rng, UniformIntCoversAllValuesInclusive) {
  Rng rng(17);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, UniformInBoxStaysInBox) {
  Rng rng(31);
  const Vec3 lo{-1, 0, 5}, hi{1, 2, 5};
  for (int i = 0; i < 1000; ++i) {
    const Vec3 p = rng.uniform_in_box(lo, hi);
    EXPECT_GE(p.x, -1.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 2.0);
    EXPECT_DOUBLE_EQ(p.z, 5.0);  // degenerate dimension
  }
}

TEST(Rng, UnitVectorXyHasUnitNormAndZeroZ) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    const Vec3 v = rng.unit_vector_xy();
    EXPECT_NEAR(v.norm(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(v.z, 0.0);
  }
}

TEST(Rng, StateRoundTripContinuesStreamBitIdentically) {
  Rng rng(123);
  for (int i = 0; i < 17; ++i) (void)rng.uniform();  // advance mid-stream

  const Rng::State saved = rng.state();
  std::vector<double> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(rng.uniform());

  rng.set_state(saved);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.uniform(), expected[static_cast<size_t>(i)]) << "draw " << i;
  }
}

TEST(Rng, StateCaptureDoesNotPerturbSplit) {
  // split() must derive the same child stream whether or not the parent's
  // state was snapshotted/restored around it.
  Rng a(7), b(7);
  (void)a.uniform();
  (void)b.uniform();

  const Rng::State saved = a.state();
  (void)a.state();  // extra reads are pure
  a.set_state(saved);

  Rng child_a = a.split(99);
  Rng child_b = b.split(99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child_a.uniform(), child_b.uniform());
  }
  // Parents also continue in lockstep after the split.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}

// Property sweep: determinism and range hold across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, StreamsAreReproducibleAndInRange) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 50; ++i) {
    const double u = a.uniform();
    EXPECT_EQ(u, b.uniform());
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0u, 1u, 42u, 1000u, 0xffffffffffffffffull));

}  // namespace
}  // namespace swarmfuzz::math
