#include "swarm/olfati_saber.h"

#include <gtest/gtest.h>

namespace swarmfuzz::swarm {
namespace {

using sim::DroneObservation;

MissionSpec basic_mission() {
  MissionSpec mission;
  mission.initial_positions = {{0, 0, 10}, {10, 0, 10}};
  mission.destination = {200, 0, 10};
  mission.cruise_altitude = 10.0;
  return mission;
}

WorldSnapshot snapshot_of(std::initializer_list<DroneObservation> drones) {
  WorldSnapshot snap;
  for (const DroneObservation& obs : drones) snap.push_back(obs);
  return snap;
}

TEST(SigmaNorm, ZeroAtZeroAndIncreasing) {
  EXPECT_DOUBLE_EQ(sigma_norm(0.0, 0.1), 0.0);
  double prev = 0.0;
  for (double d = 0.0; d < 50.0; d += 0.5) {
    const double s = sigma_norm(d, 0.1);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(SigmaNorm, MatchesClosedForm) {
  const double eps = 0.1, d = 10.0;
  EXPECT_NEAR(sigma_norm(d, eps), (std::sqrt(1.0 + eps * d * d) - 1.0) / eps, 1e-12);
}

TEST(Bump, PlateauTransitionAndSupport) {
  EXPECT_DOUBLE_EQ(bump(-0.1, 0.2), 0.0);
  EXPECT_DOUBLE_EQ(bump(0.0, 0.2), 1.0);
  EXPECT_DOUBLE_EQ(bump(0.1, 0.2), 1.0);   // inside the plateau
  EXPECT_DOUBLE_EQ(bump(1.0, 0.2), 0.0);   // end of support
  EXPECT_DOUBLE_EQ(bump(1.5, 0.2), 0.0);   // beyond support
  const double mid = bump(0.6, 0.2);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(Bump, ContinuousAtPlateauEdge) {
  EXPECT_NEAR(bump(0.2 - 1e-9, 0.2), bump(0.2 + 1e-9, 0.2), 1e-6);
}

TEST(OlfatiSaber, RejectsInvalidParams) {
  OlfatiSaberParams params;
  params.d = 0.0;
  EXPECT_THROW(OlfatiSaberController{params}, std::invalid_argument);
  params = {};
  params.r_factor = 0.9;
  EXPECT_THROW(OlfatiSaberController{params}, std::invalid_argument);
  params = {};
  params.b = params.a - 1.0;  // requires a <= b
  EXPECT_THROW(OlfatiSaberController{params}, std::invalid_argument);
}

TEST(OlfatiSaber, LoneDroneHeadsToDestination) {
  const OlfatiSaberController controller;
  const auto snap = snapshot_of({{0, {0, 0, 10}, {}}});
  const Vec3 v = controller.desired_velocity(0, snap, basic_mission());
  EXPECT_GT(v.x, 0.0);
  EXPECT_NEAR(v.y, 0.0, 1e-9);
  EXPECT_LE(v.norm(), controller.params().v_max + 1e-12);
}

TEST(OlfatiSaber, CloseNeighboursRepel) {
  const OlfatiSaberController controller;
  const double close = controller.params().d / 3.0;
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {close, 0, 10}, {}},
  });
  const Vec3 with = controller.desired_velocity(0, snap, basic_mission());
  const auto alone = snapshot_of({{0, {0, 0, 10}, {}}});
  const Vec3 without = controller.desired_velocity(0, alone, basic_mission());
  // The close neighbour on +x pushes drone 0 backwards relative to solo.
  EXPECT_LT(with.x, without.x);
}

TEST(OlfatiSaber, NeighboursNearSpacingAttractWhenBeyondD) {
  const OlfatiSaberController controller;
  const double beyond = controller.params().d * 1.3;  // inside range, beyond d
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {beyond, 0, 10}, {}},
  });
  const Vec3 with = controller.desired_velocity(0, snap, basic_mission());
  const auto alone = snapshot_of({{0, {0, 0, 10}, {}}});
  const Vec3 without = controller.desired_velocity(0, alone, basic_mission());
  EXPECT_GT(with.x, without.x);  // pulled toward the distant neighbour
}

TEST(OlfatiSaber, OutOfRangeNeighbourIgnored) {
  const OlfatiSaberController controller;
  const double far = controller.params().r_factor * controller.params().d + 5.0;
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {far, 0, 10}, {}},
  });
  const auto alone = snapshot_of({{0, {0, 0, 10}, {}}});
  EXPECT_EQ(controller.desired_velocity(0, snap, basic_mission()),
            controller.desired_velocity(0, alone, basic_mission()));
}

TEST(OlfatiSaber, VelocityConsensusDamping) {
  const OlfatiSaberController controller;
  // Same position geometry; neighbour moving fast should drag us forward.
  const auto still = snapshot_of({
      {0, {0, 0, 10}, {0, 0, 0}},
      {1, {12, 0, 10}, {0, 0, 0}},
  });
  const auto moving = snapshot_of({
      {0, {0, 0, 10}, {0, 0, 0}},
      {1, {12, 0, 10}, {3, 0, 0}},
  });
  EXPECT_GT(controller.desired_velocity(0, moving, basic_mission()).x,
            controller.desired_velocity(0, still, basic_mission()).x);
}

TEST(OlfatiSaber, ObstacleBetaAgentRepels) {
  const OlfatiSaberController controller;
  MissionSpec mission = basic_mission();
  mission.obstacles = sim::ObstacleField({sim::CylinderObstacle{{6, 0, 0}, 2.0}});
  // Drone close to the obstacle, flying into it.
  const auto snap = snapshot_of({{0, {2, 0, 10}, {2, 0, 0}}});
  MissionSpec no_obstacle = basic_mission();
  const Vec3 with = controller.desired_velocity(0, snap, mission);
  const Vec3 without = controller.desired_velocity(0, snap, no_obstacle);
  EXPECT_LT(with.x, without.x);  // braked/deflected by the beta agent
}

TEST(OlfatiSaber, AltitudeHeldViaZComponent) {
  const OlfatiSaberController controller;
  const auto low = snapshot_of({{0, {0, 0, 4}, {}}});
  const Vec3 v = controller.desired_velocity(0, low, basic_mission());
  EXPECT_GT(v.z, 0.0);
}

TEST(OlfatiSaber, SelfIndexOutOfRangeThrows) {
  const OlfatiSaberController controller;
  const auto snap = snapshot_of({{0, {0, 0, 10}, {}}});
  EXPECT_THROW((void)controller.desired_velocity(2, snap, basic_mission()),
               std::out_of_range);
}

TEST(OlfatiSaber, NamedCorrectly) {
  EXPECT_EQ(OlfatiSaberController{}.name(), "olfati_saber");
}

}  // namespace
}  // namespace swarmfuzz::swarm
