#include "fuzz/eval_pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"
#include "sim/fault.h"
#include "swarm/vasarhelyi.h"

namespace swarmfuzz::fuzz {
namespace {

// ---------------------------------------------------------------------------
// split_eval_threads: the campaign's workers/eval-threads budget split.

TEST(EvalPool, SplitEvalThreadsAutoDividesHardware) {
  EXPECT_EQ(split_eval_threads(1, 0, 8), 8);
  EXPECT_EQ(split_eval_threads(2, 0, 8), 4);
  EXPECT_EQ(split_eval_threads(3, 0, 8), 2);  // floor(8 / 3)
  EXPECT_EQ(split_eval_threads(8, 0, 8), 1);
  EXPECT_EQ(split_eval_threads(16, 0, 8), 1);  // oversubscribed workers
}

TEST(EvalPool, SplitEvalThreadsClampsExplicitRequests) {
  EXPECT_EQ(split_eval_threads(2, 2, 8), 2);   // fits: honoured
  EXPECT_EQ(split_eval_threads(2, 16, 8), 4);  // clamped to hardware / workers
  EXPECT_EQ(split_eval_threads(8, 4, 8), 1);   // no headroom left
  EXPECT_EQ(split_eval_threads(1, 4, 8), 4);
}

TEST(EvalPool, SplitEvalThreadsDegenerateInputsStaySane) {
  EXPECT_EQ(split_eval_threads(0, 0, 0), 1);
  EXPECT_EQ(split_eval_threads(-3, -1, -2), 1);
  EXPECT_EQ(split_eval_threads(1, 1, 1), 1);
  // hardware_concurrency() == 0 ("not computable") must never produce a
  // zero-thread worker, whatever the worker count says.
  EXPECT_EQ(split_eval_threads(4, 0, 0), 1);
  EXPECT_EQ(split_eval_threads(4, 8, 0), 1);
  // Zero workers clamp to one before the division, not after.
  EXPECT_EQ(split_eval_threads(0, 2, 8), 2);
  EXPECT_EQ(split_eval_threads(0, 0, 8), 8);
}

TEST(EvalPool, HardwareThreadsNeverReportsZero) {
  // The standard allows hardware_concurrency() to return 0; every
  // worker-count division in the fuzzing layer relies on this floor.
  EXPECT_GE(hardware_threads(), 1);
}

// ---------------------------------------------------------------------------
// split_thread_budget: the three-way workers x eval x sim budget.

TEST(SplitThreadBudget, BothAutoKeepsHistoricalSplit) {
  // Auto-auto = all eval threads, serial ticks (the pre-sim-threads split).
  EXPECT_EQ(split_thread_budget(1, 0, 0, 8).eval_threads, 8);
  EXPECT_EQ(split_thread_budget(1, 0, 0, 8).sim_threads, 1);
  EXPECT_EQ(split_thread_budget(2, 0, 0, 8).eval_threads, 4);
  EXPECT_EQ(split_thread_budget(2, 0, 0, 8).sim_threads, 1);
  EXPECT_EQ(split_thread_budget(16, 0, 0, 8).eval_threads, 1);
  EXPECT_EQ(split_thread_budget(16, 0, 0, 8).sim_threads, 1);
}

TEST(SplitThreadBudget, ExplicitEvalLeavesRemainderToSim) {
  const ThreadBudget b = split_thread_budget(1, 2, 0, 8);
  EXPECT_EQ(b.eval_threads, 2);
  EXPECT_EQ(b.sim_threads, 4);  // 8 / 2 left for intra-tick parallelism
}

TEST(SplitThreadBudget, ExplicitSimLeavesRemainderToEval) {
  const ThreadBudget b = split_thread_budget(1, 0, 2, 8);
  EXPECT_EQ(b.sim_threads, 2);
  EXPECT_EQ(b.eval_threads, 4);
}

TEST(SplitThreadBudget, BothExplicitClampedToWorkerShare) {
  // workers = 2 on 8 cores -> per-worker share of 4; eval = 3 fits, but
  // sim = 5 must clamp so eval x sim stays within the share.
  const ThreadBudget b = split_thread_budget(2, 3, 5, 8);
  EXPECT_EQ(b.eval_threads, 3);
  EXPECT_EQ(b.sim_threads, 1);
}

TEST(SplitThreadBudget, FullyOversubscribedDegenerateClampsToOne) {
  // workers = eval = sim = hardware would be hw^3 threads; every dimension
  // must clamp back to >= 1 and the product must respect the worker share.
  const ThreadBudget b = split_thread_budget(8, 8, 8, 8);
  EXPECT_EQ(b.eval_threads, 1);
  EXPECT_EQ(b.sim_threads, 1);
}

TEST(SplitThreadBudget, DegenerateInputsStaySane) {
  EXPECT_EQ(split_thread_budget(0, 0, 0, 0).eval_threads, 1);
  EXPECT_EQ(split_thread_budget(0, 0, 0, 0).sim_threads, 1);
  EXPECT_EQ(split_thread_budget(-3, -1, -2, -4).eval_threads, 1);
  EXPECT_EQ(split_thread_budget(-3, -1, -2, -4).sim_threads, 1);
  // Unknown hardware concurrency (0) never yields a zero-thread budget.
  EXPECT_EQ(split_thread_budget(4, 8, 8, 0).eval_threads, 1);
  EXPECT_EQ(split_thread_budget(4, 8, 8, 0).sim_threads, 1);
}

// ---------------------------------------------------------------------------
// EvalPool: batch outcomes must match direct serial evaluation bit for bit.

struct PoolFixture {
  PoolFixture() {
    sim_config.dt = 0.05;
    sim_config.gps.rate_hz = 20.0;
    sim::MissionConfig mc;
    mc.num_drones = 5;
    mission = sim::generate_mission(mc, 1005);
    controller = std::make_shared<swarm::VasarhelyiController>();
  }

  sim::SimulationConfig sim_config;
  sim::MissionSpec mission;
  std::shared_ptr<const swarm::VasarhelyiController> controller;
  Seed seed{.target = 0, .victim = 1,
            .direction = attack::SpoofDirection::kRight};
};

TEST(EvalPool, BatchResultsMatchSerialEvaluation) {
  PoolFixture f;
  EvalPool pool(f.sim_config, f.controller, {}, 3);
  EXPECT_EQ(pool.threads(), 3);

  const std::vector<EvalPool::Job> jobs{
      {10.0, 20.0}, {30.0, 15.0}, {5.0, 5.0}, {18.0, 12.0}};
  const EvalPool::BatchContext context{
      .mission = &f.mission, .seed = f.seed, .spoof_distance = 10.0};
  const std::vector<EvalPool::JobResult> results = pool.evaluate(context, jobs);
  ASSERT_EQ(results.size(), jobs.size());

  // Serial reference: a fresh simulator/system clone, like each worker owns.
  const sim::Simulator simulator(f.sim_config);
  swarm::FlockingControlSystem system(f.controller, {});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_FALSE(results[i].error) << "job " << i;
    const AttackEvalOutcome serial =
        evaluate_attack(f.mission, simulator, system, f.seed, 10.0, nullptr,
                        nullptr, jobs[i].t_start, jobs[i].duration);
    EXPECT_EQ(results[i].eval.f, serial.eval.f) << "job " << i;
    EXPECT_EQ(results[i].eval.success, serial.eval.success);
    EXPECT_EQ(results[i].eval.crashed_drone, serial.eval.crashed_drone);
    EXPECT_EQ(results[i].eval.end_time, serial.eval.end_time);
    EXPECT_EQ(results[i].steps_executed, serial.steps_executed);
    EXPECT_EQ(results[i].steps_resumed, serial.steps_resumed);
  }
}

TEST(EvalPool, SingleThreadRunsInlineWithoutWorkers) {
  PoolFixture f;
  EvalPool pool(f.sim_config, f.controller, {}, 1);
  EXPECT_EQ(pool.threads(), 1);
  const std::vector<EvalPool::Job> jobs{{10.0, 20.0}};
  const EvalPool::BatchContext context{
      .mission = &f.mission, .seed = f.seed, .spoof_distance = 10.0};
  const auto results = pool.evaluate(context, jobs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].error);
  EXPECT_GT(results[0].steps_executed, 0);
}

TEST(EvalPool, EmptyBatchReturnsEmpty) {
  PoolFixture f;
  EvalPool pool(f.sim_config, f.controller, {}, 2);
  const EvalPool::BatchContext context{
      .mission = &f.mission, .seed = f.seed, .spoof_distance = 10.0};
  EXPECT_TRUE(pool.evaluate(context, {}).empty());
}

TEST(EvalPool, CapturesGuardTripsPerJob) {
  // A one-step watchdog trips every simulation; the pool must capture the
  // RunFaultError in each job's slot instead of tearing down a worker.
  PoolFixture f;
  EvalPool pool(f.sim_config, f.controller, {}, 2);
  EvalGuards guards;
  guards.watchdog.max_steps = 1;
  const std::vector<EvalPool::Job> jobs{{10.0, 20.0}, {30.0, 15.0}};
  const EvalPool::BatchContext context{.mission = &f.mission,
                                       .seed = f.seed,
                                       .spoof_distance = 10.0,
                                       .guards = &guards};
  const auto results = pool.evaluate(context, jobs);
  ASSERT_EQ(results.size(), 2u);
  for (const EvalPool::JobResult& r : results) {
    ASSERT_TRUE(r.error);
    EXPECT_THROW(std::rethrow_exception(r.error), sim::RunFaultError);
  }

  // The pool stays usable after a faulted batch.
  const auto ok = pool.evaluate(
      EvalPool::BatchContext{
          .mission = &f.mission, .seed = f.seed, .spoof_distance = 10.0},
      jobs);
  ASSERT_EQ(ok.size(), 2u);
  EXPECT_FALSE(ok[0].error);
  EXPECT_FALSE(ok[1].error);
}

// ---------------------------------------------------------------------------
// Golden parallel-vs-serial: a search run with --eval-threads N must be
// bit-identical (deterministic_equal) to the serial run, across both vehicle
// models and with prefix reuse on and off.

FuzzResult run_search(int eval_threads, sim::VehicleType vehicle,
                      bool prefix_reuse, std::uint64_t mission_seed,
                      int budget) {
  FuzzerConfig config;
  config.spoof_distance = 10.0;
  config.sim.dt = 0.05;
  config.sim.gps.rate_hz = 20.0;
  config.sim.vehicle = vehicle;
  config.prefix_reuse = prefix_reuse;
  config.mission_budget = budget;
  config.eval_threads = eval_threads;
  auto fuzzer = make_fuzzer(FuzzerKind::kSwarmFuzz, config);
  sim::MissionConfig mc;
  mc.num_drones = 5;
  return fuzzer->fuzz(sim::generate_mission(mc, mission_seed));
}

void expect_golden(sim::VehicleType vehicle, bool prefix_reuse,
                   std::uint64_t mission_seed, int budget) {
  const FuzzResult serial =
      run_search(1, vehicle, prefix_reuse, mission_seed, budget);
  const FuzzResult parallel =
      run_search(4, vehicle, prefix_reuse, mission_seed, budget);
  EXPECT_TRUE(deterministic_equal(serial, parallel));
  // The batch *shape* of the search is thread-count independent too; only
  // the parallelism differs.
  EXPECT_EQ(serial.eval_batches, parallel.eval_batches);
  EXPECT_GT(parallel.eval_batches, 0);
  EXPECT_EQ(serial.eval_parallelism, 1);
  EXPECT_EQ(parallel.eval_parallelism, 4);
  EXPECT_FALSE(serial.clean_run_failed);
  EXPECT_GT(serial.attempts_tried, 0);
}

TEST(ParallelSearch, GoldenPointMassPrefixReuse) {
  // Seed 1013 is attackable at 10 m: exercises the success/early-stop path.
  expect_golden(sim::VehicleType::kPointMass, true, 1013, 60);
}

TEST(ParallelSearch, GoldenPointMassNoPrefix) {
  expect_golden(sim::VehicleType::kPointMass, false, 1013, 12);
}

TEST(ParallelSearch, GoldenPointMassStallPath) {
  // Seed 1000 resists 10 m spoofing: exercises stall/abandon replay.
  expect_golden(sim::VehicleType::kPointMass, true, 1000, 20);
}

TEST(ParallelSearch, GoldenQuadrotorPrefixReuse) {
  expect_golden(sim::VehicleType::kQuadrotor, true, 1013, 8);
}

TEST(ParallelSearch, GoldenQuadrotorNoPrefix) {
  expect_golden(sim::VehicleType::kQuadrotor, false, 1013, 6);
}

TEST(ParallelSearch, CampaignIndependentOfEvalThreads) {
  // Campaign results must not depend on the eval-thread split either. On a
  // small machine split_eval_threads may clamp the request back to 1; the
  // invariant holds for whatever split is granted.
  CampaignConfig base;
  base.mission.num_drones = 5;
  base.fuzzer.spoof_distance = 10.0;
  base.fuzzer.sim.dt = 0.05;
  base.fuzzer.sim.gps.rate_hz = 20.0;
  base.fuzzer.mission_budget = 10;
  base.num_missions = 3;
  base.num_threads = 1;
  base.base_seed = 1000;

  CampaignConfig serial = base;
  serial.fuzzer.eval_threads = 1;
  CampaignConfig parallel = base;
  parallel.fuzzer.eval_threads = 2;

  const CampaignResult a = run_campaign(serial);
  const CampaignResult b = run_campaign(parallel);
  EXPECT_TRUE(deterministic_equal(a, b));
}

}  // namespace
}  // namespace swarmfuzz::fuzz
