#include "fuzz/mutation.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace swarmfuzz::fuzz {
namespace {

CorpusEntry parent_entry() {
  CorpusEntry entry;
  entry.seed = Seed{.target = 0, .victim = 3,
                    .direction = attack::SpoofDirection::kLeft,
                    .vdo = 4.0, .influence = 0.5};
  entry.t_start = 30.0;
  entry.duration = 15.0;
  entry.cost = 90.0;
  entry.signature = {1, 2};
  return entry;
}

CorpusEntry partner_entry() {
  CorpusEntry entry;
  entry.seed = Seed{.target = 2, .victim = 4,
                    .direction = attack::SpoofDirection::kRight,
                    .vdo = 7.0, .influence = 0.25};
  entry.t_start = 55.0;
  entry.duration = 5.0;
  entry.cost = 65.0;
  entry.signature = {3};
  return entry;
}

TEST(Mutation, IsDeterministic) {
  math::Rng rng_a(42), rng_b(42);
  const CorpusEntry parent = parent_entry(), partner = partner_entry();
  for (int i = 0; i < 200; ++i) {
    const MutantCandidate a = mutate(parent, partner, 5, 120.0, rng_a);
    const MutantCandidate b = mutate(parent, partner, 5, 120.0, rng_b);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.seed.target, b.seed.target);
    EXPECT_EQ(a.seed.victim, b.seed.victim);
    EXPECT_EQ(a.seed.direction, b.seed.direction);
    EXPECT_DOUBLE_EQ(a.t_start, b.t_start);
    EXPECT_DOUBLE_EQ(a.duration, b.duration);
  }
}

TEST(Mutation, MaintainsPairAndWindowInvariants) {
  math::Rng rng(7);
  const CorpusEntry parent = parent_entry(), partner = partner_entry();
  for (int i = 0; i < 500; ++i) {
    const MutantCandidate m = mutate(parent, partner, 5, 120.0, rng);
    EXPECT_GE(m.seed.target, 0);
    EXPECT_LT(m.seed.target, 5);
    EXPECT_GE(m.seed.victim, 0);
    EXPECT_LT(m.seed.victim, 5);
    EXPECT_NE(m.seed.target, m.seed.victim);
    EXPECT_GE(m.t_start, 0.0);
    EXPECT_GE(m.duration, 0.0);
    EXPECT_FALSE(mutation_op_name(m.op).empty());
  }
}

TEST(Mutation, ExercisesEveryOperator) {
  math::Rng rng(11);
  const CorpusEntry parent = parent_entry(), partner = partner_entry();
  std::set<MutationOp> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(mutate(parent, partner, 5, 120.0, rng).op);
  }
  EXPECT_TRUE(seen.contains(MutationOp::kWindowShift));
  EXPECT_TRUE(seen.contains(MutationOp::kWindowStretch));
  EXPECT_TRUE(seen.contains(MutationOp::kWindowReset));
  EXPECT_TRUE(seen.contains(MutationOp::kCrossover));
  EXPECT_TRUE(seen.contains(MutationOp::kTargetSwap));
  EXPECT_TRUE(seen.contains(MutationOp::kVictimSwap));
  EXPECT_TRUE(seen.contains(MutationOp::kDirectionFlip));
}

TEST(Mutation, TwoDroneSwarmNeverAttemptsPairSwap) {
  // With n = 2 the only valid pair is the parent's; a target or victim swap
  // has no candidate to draw (the empty-range RNG bug class this PR fixes in
  // R_Fuzz/G_Fuzz), so those operators must degrade to a direction flip.
  CorpusEntry parent = parent_entry();
  parent.seed.target = 0;
  parent.seed.victim = 1;
  CorpusEntry partner = partner_entry();
  partner.seed.target = 1;
  partner.seed.victim = 0;
  math::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const MutantCandidate m = mutate(parent, partner, 2, 120.0, rng);
    EXPECT_NE(m.op, MutationOp::kTargetSwap);
    EXPECT_NE(m.op, MutationOp::kVictimSwap);
    EXPECT_NE(m.seed.target, m.seed.victim);
    EXPECT_GE(m.seed.target, 0);
    EXPECT_LT(m.seed.target, 2);
  }
}

TEST(Mutation, CrossoverTakesPartnerWindowAndParentPair) {
  math::Rng rng(19);
  const CorpusEntry parent = parent_entry(), partner = partner_entry();
  bool found = false;
  for (int i = 0; i < 1000 && !found; ++i) {
    const MutantCandidate m = mutate(parent, partner, 5, 120.0, rng);
    if (m.op != MutationOp::kCrossover) continue;
    found = true;
    EXPECT_DOUBLE_EQ(m.t_start, partner.t_start);
    EXPECT_DOUBLE_EQ(m.duration, partner.duration);
    EXPECT_EQ(m.seed.target, parent.seed.target);
    EXPECT_EQ(m.seed.victim, parent.seed.victim);
    EXPECT_EQ(m.seed.direction, parent.seed.direction);
  }
  EXPECT_TRUE(found);
}

TEST(Mutation, DirectionFlipMirrorsTheSpoof) {
  math::Rng rng(23);
  const CorpusEntry parent = parent_entry(), partner = partner_entry();
  bool found = false;
  for (int i = 0; i < 1000 && !found; ++i) {
    const MutantCandidate m = mutate(parent, partner, 5, 120.0, rng);
    if (m.op != MutationOp::kDirectionFlip) continue;
    found = true;
    EXPECT_EQ(m.seed.direction, attack::opposite(parent.seed.direction));
    EXPECT_DOUBLE_EQ(m.t_start, parent.t_start);
    EXPECT_DOUBLE_EQ(m.duration, parent.duration);
  }
  EXPECT_TRUE(found);
}

TEST(Mutation, OpNamesAreDistinct) {
  std::set<std::string> names;
  for (const MutationOp op :
       {MutationOp::kWindowShift, MutationOp::kWindowStretch,
        MutationOp::kWindowReset, MutationOp::kCrossover, MutationOp::kTargetSwap,
        MutationOp::kVictimSwap, MutationOp::kDirectionFlip}) {
    names.insert(std::string{mutation_op_name(op)});
  }
  EXPECT_EQ(names.size(), 7u);
}

}  // namespace
}  // namespace swarmfuzz::fuzz
