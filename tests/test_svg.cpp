#include "fuzz/svg.h"

#include <gtest/gtest.h>

#include "graph/pagerank.h"
#include "swarm/vasarhelyi.h"

namespace swarmfuzz::fuzz {
namespace {

using attack::SpoofDirection;
using sim::DroneObservation;
using sim::MissionSpec;
using sim::WorldSnapshot;

MissionSpec mission_with_obstacle(const math::Vec3& obstacle_center,
                                  double radius = 3.0) {
  MissionSpec mission;
  mission.initial_positions = {{0, 0, 10}, {0, 12, 10}, {5, -8, 10}};
  mission.destination = {200, 0, 10};  // axis +x, left = +y, right = -y
  mission.obstacles = sim::ObstacleField({sim::CylinderObstacle{obstacle_center, radius}});
  return mission;
}

WorldSnapshot cruising_snapshot(const MissionSpec& mission) {
  WorldSnapshot snap;
  snap.time = 40.0;
  for (int i = 0; i < mission.num_drones(); ++i) {
    snap.push_back(DroneObservation{
        .id = i,
        .gps_position = mission.initial_positions[static_cast<size_t>(i)] +
                        math::Vec3{40, 0, 0},
        .velocity = {2.5, 0, 0},
    });
  }
  return snap;
}

class SvgTest : public ::testing::Test {
 protected:
  SvgTest() : system_(swarm::make_vasarhelyi_system()) {}
  std::unique_ptr<swarm::FlockingControlSystem> system_;
};

TEST_F(SvgTest, NodeCountMatchesSwarm) {
  const MissionSpec mission = mission_with_obstacle({60, 0, 0});
  const auto snap = cruising_snapshot(mission);
  const graph::Digraph svg =
      build_svg(snap, mission, *system_, SpoofDirection::kRight, 10.0);
  EXPECT_EQ(svg.num_nodes(), 3);
}

TEST_F(SvgTest, NoObstaclesMeansNoEdges) {
  MissionSpec mission = mission_with_obstacle({60, 0, 0});
  mission.obstacles = sim::ObstacleField{};
  const auto snap = cruising_snapshot(mission);
  const graph::Digraph svg =
      build_svg(snap, mission, *system_, SpoofDirection::kRight, 10.0);
  EXPECT_EQ(svg.num_edges(), 0);
}

TEST_F(SvgTest, EdgesHaveWeightsInUnitInterval) {
  const MissionSpec mission = mission_with_obstacle({60, -5, 0});
  const auto snap = cruising_snapshot(mission);
  for (const SpoofDirection dir : {SpoofDirection::kRight, SpoofDirection::kLeft}) {
    const graph::Digraph svg = build_svg(snap, mission, *system_, dir, 10.0);
    for (const graph::Edge& e : svg.edges()) {
      EXPECT_GT(e.weight, 0.0);
      EXPECT_LE(e.weight, 1.0);
      EXPECT_NE(e.from, e.to);
    }
  }
}

TEST_F(SvgTest, DeterministicConstruction) {
  const MissionSpec mission = mission_with_obstacle({60, -5, 0});
  const auto snap = cruising_snapshot(mission);
  const graph::Digraph a =
      build_svg(snap, mission, *system_, SpoofDirection::kRight, 10.0);
  const graph::Digraph b =
      build_svg(snap, mission, *system_, SpoofDirection::kRight, 10.0);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (const graph::Edge& e : a.edges()) {
    EXPECT_TRUE(b.has_edge(e.from, e.to));
    EXPECT_DOUBLE_EQ(b.edge_weight(e.from, e.to).value(), e.weight);
  }
}

TEST_F(SvgTest, MaliciousInfluenceDetectedInCraftedGeometry) {
  // Drone 0 at y=0, drone 1 at y=12 (just beyond repulsion range 8).
  // Obstacle ahead and below drone 0's path. Spoofing drone 1 to the right
  // (-y) brings its reported fix within repulsion range of drone 0, pushing
  // drone 0 further toward -y, i.e. toward the obstacle: edge 0 -> 1.
  const MissionSpec mission = mission_with_obstacle({60, -6, 0});
  WorldSnapshot snap;
  snap.time = 40.0;
  snap.push_back({0, {40, 0, 10}, {2.5, 0, 0}});
  snap.push_back({1, {40, 12, 10}, {2.5, 0, 0}});
  MissionSpec two = mission;
  two.initial_positions = {{0, 0, 10}, {0, 12, 10}};
  const graph::Digraph svg =
      build_svg(snap, two, *system_, SpoofDirection::kRight, 10.0);
  EXPECT_TRUE(svg.has_edge(0, 1));
}

TEST_F(SvgTest, InfluenceThresholdFiltersWeakEdges) {
  const MissionSpec mission = mission_with_obstacle({60, -5, 0});
  const auto snap = cruising_snapshot(mission);
  const graph::Digraph loose = build_svg(snap, mission, *system_,
                                         SpoofDirection::kRight, 10.0,
                                         SvgConfig{.influence_threshold = 1e-6});
  const graph::Digraph strict = build_svg(snap, mission, *system_,
                                          SpoofDirection::kRight, 10.0,
                                          SvgConfig{.influence_threshold = 1e3});
  EXPECT_EQ(strict.num_edges(), 0);
  EXPECT_GE(loose.num_edges(), strict.num_edges());
}

TEST_F(SvgTest, PageRankOnSvgIsProbabilityDistribution) {
  const MissionSpec mission = mission_with_obstacle({60, -5, 0});
  const auto snap = cruising_snapshot(mission);
  const graph::Digraph svg =
      build_svg(snap, mission, *system_, SpoofDirection::kLeft, 10.0);
  const auto result = graph::pagerank(svg);
  double sum = 0.0;
  for (const double s : result.scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

}  // namespace
}  // namespace swarmfuzz::fuzz
