// Integration tests: the full SwarmFuzz pipeline (paper Fig. 3) on real
// missions, plus the cross-cutting invariants the paper relies on.
#include <gtest/gtest.h>

#include "attack/spoofing.h"
#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"
#include "swarm/olfati_saber.h"
#include "swarm/vasarhelyi.h"

namespace swarmfuzz {
namespace {

sim::SimulationConfig fast_sim() {
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  return config;
}

// Paper section V-A: "In the absence of attacks, we find that no collision
// occurs in any mission." Checked across sizes and seeds.
class CleanMissionSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CleanMissionSweep, NoCollisionWithoutAttack) {
  const auto [size, seed] = GetParam();
  sim::MissionConfig config;
  config.num_drones = size;
  const sim::MissionSpec mission = sim::generate_mission(config, seed);
  auto system = swarm::make_vasarhelyi_system();
  const sim::Simulator simulator(fast_sim());
  const sim::RunResult result = simulator.run(mission, *system);
  EXPECT_FALSE(result.collided) << "size=" << size << " seed=" << seed;
  EXPECT_TRUE(result.reached_destination);
  // Every drone keeps a positive clearance from the obstacle.
  for (int i = 0; i < size; ++i) {
    EXPECT_GT(result.vdo(i), mission.drone_radius);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, CleanMissionSweep,
    ::testing::Combine(::testing::Values(5, 10, 15),
                       ::testing::Values(1000u, 1003u, 1007u, 1011u)));

TEST(EndToEnd, SwarmFuzzPipelineOnVulnerableMission) {
  // Full pipeline: clean run -> SVG + PageRank seeds -> gradient search ->
  // validated SPV, on the known-vulnerable mission seed 1013.
  sim::MissionConfig mission_config;
  mission_config.num_drones = 5;
  const sim::MissionSpec mission = sim::generate_mission(mission_config, 1013);

  fuzz::FuzzerConfig config;
  config.sim = fast_sim();
  config.spoof_distance = 10.0;
  auto fuzzer = fuzz::make_fuzzer(fuzz::FuzzerKind::kSwarmFuzz, config);
  const fuzz::FuzzResult result = fuzzer->fuzz(mission);
  ASSERT_TRUE(result.found);

  // Manual validation, as the paper does for every reported SPV: replay and
  // confirm a victim-obstacle collision with the target uninvolved.
  auto system = swarm::make_vasarhelyi_system();
  const sim::Simulator simulator(fast_sim());
  const attack::GpsSpoofer spoofer(result.plan, mission);
  const sim::RunResult replay = simulator.run(mission, *system, &spoofer);
  ASSERT_TRUE(replay.first_collision.has_value());
  EXPECT_EQ(replay.first_collision->kind, sim::CollisionKind::kDroneObstacle);
  EXPECT_NE(replay.first_collision->drone, result.plan.target);
  // Timing constraint from section IV-C.
  EXPECT_LE(result.plan.start_time + result.plan.duration,
            result.clean_mission_time + 1e-6);
}

TEST(EndToEnd, SpoofingPerturbsOnlyDuringWindow) {
  // The target's recorded trajectory diverges from the clean one only after
  // the spoofing window opens.
  sim::MissionConfig mission_config;
  mission_config.num_drones = 5;
  const sim::MissionSpec mission = sim::generate_mission(mission_config, 1001);
  auto system = swarm::make_vasarhelyi_system();
  sim::SimulationConfig sim_config = fast_sim();
  sim_config.stop_on_collision = false;
  sim_config.record_period = 0.0;  // keep every sample
  const sim::Simulator simulator(sim_config);

  const sim::RunResult clean = simulator.run(mission, *system);
  const attack::SpoofingPlan plan{.target = 0,
                                  .direction = attack::SpoofDirection::kRight,
                                  .start_time = 30.0,
                                  .duration = 10.0,
                                  .distance = 10.0};
  const attack::GpsSpoofer spoofer(plan, mission);
  const sim::RunResult attacked = simulator.run(mission, *system, &spoofer);

  const int before = clean.recorder.sample_index_at(29.0);
  const auto clean_before = clean.recorder.sample(before);
  const auto attacked_before = attacked.recorder.sample(before);
  for (int i = 0; i < mission.num_drones(); ++i) {
    EXPECT_LT(math::distance(clean_before[static_cast<size_t>(i)].position,
                             attacked_before[static_cast<size_t>(i)].position),
              1e-6);
  }
  const int after = clean.recorder.sample_index_at(38.0);
  EXPECT_GT(math::distance(clean.recorder.sample(after)[0].position,
                           attacked.recorder.sample(after)[0].position),
            0.1);
}

TEST(EndToEnd, ConvexityOfObjectiveAlongDurationAxis) {
  // Fig. 5: for a vulnerable seed, f(dt) dips and rises again as the
  // spoofing duration grows (too short and too long both miss).
  sim::MissionConfig mission_config;
  mission_config.num_drones = 5;
  const sim::MissionSpec mission = sim::generate_mission(mission_config, 1013);
  auto system = swarm::make_vasarhelyi_system();
  const sim::Simulator simulator(fast_sim());
  const sim::RunResult clean = simulator.run(mission, *system);

  // Target/victim pair and start time from the SPV SwarmFuzz finds on this
  // mission (target 1, victim 4, right spoofing, t_s ~ 3 s).
  fuzz::Seed seed{.target = 1, .victim = 4,
                  .direction = attack::SpoofDirection::kRight,
                  .vdo = clean.recorder.min_obstacle_distance(4)};
  fuzz::Objective objective(mission, simulator, *system, seed, 10.0,
                            clean.end_time);
  std::vector<double> f_values;
  for (const double dt : {2.0, 10.0, 20.0, 35.0, 55.0}) {
    f_values.push_back(objective.evaluate(3.0, dt).f);
  }
  const double min_f = *std::min_element(f_values.begin(), f_values.end());
  // The interior minimum is below both endpoints (unimodal dip).
  EXPECT_LT(min_f, f_values.front());
  EXPECT_LT(min_f, f_values.back());
}

TEST(EndToEnd, OlfatiSaberControllerAlsoFliesCleanMissions) {
  // Paper section VI: SwarmFuzz is controller-agnostic. Our second
  // controller must at least fly the standard mission collision-free.
  sim::MissionConfig mission_config;
  mission_config.num_drones = 5;
  const sim::MissionSpec mission = sim::generate_mission(mission_config, 1002);
  auto system = std::make_unique<swarm::FlockingControlSystem>(
      std::make_shared<swarm::OlfatiSaberController>());
  sim::SimulationConfig config = fast_sim();
  const sim::Simulator simulator(config);
  const sim::RunResult result = simulator.run(mission, *system);
  EXPECT_FALSE(result.collided);
}

TEST(EndToEnd, MultiObstacleMissionSupported) {
  // Paper section VI limitation 2: multiple obstacles only change an input.
  sim::MissionConfig mission_config;
  mission_config.num_drones = 5;
  mission_config.num_obstacles = 2;
  const sim::MissionSpec mission = sim::generate_mission(mission_config, 1004);
  fuzz::FuzzerConfig config;
  config.sim = fast_sim();
  config.mission_budget = 10;
  auto fuzzer = fuzz::make_fuzzer(fuzz::FuzzerKind::kSwarmFuzz, config);
  const fuzz::FuzzResult result = fuzzer->fuzz(mission);
  EXPECT_GE(result.simulations, 1);  // pipeline runs end-to-end
}

TEST(EndToEnd, LargerSwarmsFlyCloserToTheObstacle) {
  // Fig. 6d: the mission VDO distribution shifts down as size grows.
  const sim::Simulator simulator(fast_sim());
  std::map<int, double> avg_vdo;
  for (const int size : {5, 15}) {
    double sum = 0.0;
    int count = 0;
    for (std::uint64_t seed = 1000; seed < 1012; ++seed) {
      sim::MissionConfig config;
      config.num_drones = size;
      const sim::MissionSpec mission = sim::generate_mission(config, seed);
      auto system = swarm::make_vasarhelyi_system();
      const sim::RunResult run = simulator.run(mission, *system);
      if (run.collided) continue;
      double vdo = std::numeric_limits<double>::infinity();
      for (int i = 0; i < size; ++i) vdo = std::min(vdo, run.vdo(i));
      sum += vdo;
      ++count;
    }
    avg_vdo[size] = sum / count;
  }
  EXPECT_LT(avg_vdo[15], avg_vdo[5]);
}

}  // namespace
}  // namespace swarmfuzz
