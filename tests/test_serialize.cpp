#include "fuzz/serialize.h"

#include <gtest/gtest.h>

#include <cerrno>

#include "util/retry.h"

namespace swarmfuzz::fuzz {
namespace {

FuzzResult sample_result() {
  FuzzResult result;
  result.found = true;
  result.plan = attack::SpoofingPlan{.target = 1,
                                     .direction = attack::SpoofDirection::kLeft,
                                     .start_time = 12.5,
                                     .duration = 8.0,
                                     .distance = 10.0};
  result.victim = 4;
  result.victim_vdo = 2.25;
  result.iterations = 7;
  result.simulations = 30;
  result.mission_vdo = 2.25;
  result.clean_mission_time = 98.5;
  result.attempts.push_back(SeedAttempt{
      Seed{.target = 1, .victim = 4, .direction = attack::SpoofDirection::kLeft,
           .vdo = 2.25, .influence = 0.45},
      OptimizationResult{.success = true, .t_start = 12.5, .duration = 8.0,
                         .best_f = -0.01, .crashed_drone = 4, .iterations = 7}});
  return result;
}

TEST(Serialize, FuzzResultContainsKeyFields) {
  const std::string json = to_json(sample_result());
  EXPECT_NE(json.find("\"found\":true"), std::string::npos);
  EXPECT_NE(json.find("\"victim\":4"), std::string::npos);
  EXPECT_NE(json.find("\"direction\":\"left\""), std::string::npos);
  EXPECT_NE(json.find("\"start_time\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"attempts\":["), std::string::npos);
  EXPECT_NE(json.find("\"influence\":0.45"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Serialize, NotFoundResultOmitsPlan) {
  FuzzResult result;
  result.found = false;
  result.iterations = 60;
  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"found\":false"), std::string::npos);
  EXPECT_EQ(json.find("\"plan\""), std::string::npos);
}

TEST(Serialize, CampaignResultAggregatesAndRows) {
  CampaignResult campaign;
  campaign.config.kind = FuzzerKind::kSwarmFuzz;
  campaign.config.mission.num_drones = 5;
  campaign.config.fuzzer.spoof_distance = 10.0;
  campaign.outcomes.push_back(MissionOutcome{.mission_index = 0,
                                             .completed = true,
                                             .mission_seed = 1000,
                                             .wall_time_s = 0.5,
                                             .result = sample_result()});
  FuzzResult miss;
  miss.found = false;
  miss.iterations = 60;
  miss.mission_vdo = 5.0;
  campaign.outcomes.push_back(MissionOutcome{.mission_index = 1,
                                             .completed = true,
                                             .mission_seed = 1001,
                                             .wall_time_s = 0.5,
                                             .result = miss});

  const std::string json = to_json(campaign);
  EXPECT_NE(json.find("\"fuzzer\":\"SwarmFuzz\""), std::string::npos);
  EXPECT_NE(json.find("\"num_missions\":2"), std::string::npos);
  EXPECT_NE(json.find("\"success_rate\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"success_rate_ci95\":["), std::string::npos);
  EXPECT_NE(json.find("\"missions\":["), std::string::npos);
  EXPECT_NE(json.find("\"seed\":\"1000\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Serialize, CampaignResultReportsTransportRetryCounters) {
  util::io_retrier().reset();
  // Two transient failures absorbed by the retry layer, then success.
  int calls = 0;
  (void)util::io_retrier().run("serialize_test", [&calls] {
    if (++calls < 3) throw util::IoError("hiccup", EIO);
    return calls;
  });

  CampaignResult campaign;
  const std::string json = to_json(campaign);
  EXPECT_NE(json.find("\"io_retry\":{"), std::string::npos);
  EXPECT_NE(json.find("\"attempts\":\"3\""), std::string::npos);
  EXPECT_NE(json.find("\"retries\":\"2\""), std::string::npos);
  EXPECT_NE(json.find("\"exhausted\":\"0\""), std::string::npos);
  EXPECT_NE(json.find("\"quarantined_ops\":0"), std::string::npos);
  util::io_retrier().reset();
}

}  // namespace
}  // namespace swarmfuzz::fuzz
