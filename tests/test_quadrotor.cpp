#include "sim/quadrotor.h"

#include <gtest/gtest.h>

namespace swarmfuzz::sim {
namespace {

TEST(Quadrotor, RejectsInvalidParams) {
  QuadrotorParams bad;
  bad.mass = 0.0;
  EXPECT_THROW(QuadrotorModel{bad}, std::invalid_argument);
  bad = {};
  bad.max_thrust_factor = 1.0;
  EXPECT_THROW(QuadrotorModel{bad}, std::invalid_argument);
  bad = {};
  bad.inertia_yy = -1.0;
  EXPECT_THROW(QuadrotorModel{bad}, std::invalid_argument);
}

TEST(Quadrotor, HoversWithZeroCommand) {
  QuadrotorModel quad({});
  quad.reset({0, 0, 10}, {});
  for (int i = 0; i < 1000; ++i) quad.step({}, 0.01);
  // Stays near the initial hover point: altitude and horizontal drift small.
  EXPECT_NEAR(quad.state().position.z, 10.0, 0.5);
  EXPECT_LT(quad.state().position.norm_xy(), 0.5);
  // Thrust approximately balances gravity.
  EXPECT_NEAR(quad.thrust(), 0.296 * 9.81, 0.2);
}

TEST(Quadrotor, TracksForwardVelocityCommand) {
  QuadrotorModel quad({});
  quad.reset({0, 0, 10}, {});
  for (int i = 0; i < 3000; ++i) quad.step({2, 0, 0}, 0.005);
  EXPECT_NEAR(quad.state().velocity.x, 2.0, 0.25);
  EXPECT_NEAR(quad.state().velocity.y, 0.0, 0.1);
  EXPECT_GT(quad.state().position.x, 10.0);
  // Pitched forward (positive pitch tilts thrust toward +x).
  EXPECT_GT(quad.attitude().y, 0.0);
}

TEST(Quadrotor, TracksLateralVelocityCommand) {
  QuadrotorModel quad({});
  quad.reset({0, 0, 10}, {});
  for (int i = 0; i < 3000; ++i) quad.step({0, 1.5, 0}, 0.005);
  EXPECT_NEAR(quad.state().velocity.y, 1.5, 0.25);
  // Rolled toward -roll for +y acceleration.
  EXPECT_LT(quad.attitude().x, 0.0);
}

TEST(Quadrotor, ClimbsOnVerticalCommand) {
  QuadrotorModel quad({});
  quad.reset({0, 0, 10}, {});
  for (int i = 0; i < 2000; ++i) quad.step({0, 0, 1}, 0.005);
  EXPECT_GT(quad.state().position.z, 10.5);
  EXPECT_NEAR(quad.state().velocity.z, 1.0, 0.3);
}

TEST(Quadrotor, TiltIsBounded) {
  QuadrotorModel quad({});
  quad.reset({0, 0, 10}, {});
  for (int i = 0; i < 2000; ++i) {
    quad.step({100, 0, 0}, 0.005);  // absurd command
    EXPECT_LE(std::abs(quad.attitude().x), quad.params().max_tilt + 0.2);
    EXPECT_LE(std::abs(quad.attitude().y), quad.params().max_tilt + 0.2);
  }
}

TEST(Quadrotor, LargeStepIsInternallySubstepped) {
  // Stepping at 50 ms must stay stable (substeps cap at 5 ms internally).
  QuadrotorModel quad({});
  quad.reset({0, 0, 10}, {});
  for (int i = 0; i < 400; ++i) quad.step({1, 1, 0}, 0.05);
  EXPECT_LT(quad.state().velocity.norm(), quad.params().max_speed * 1.5 + 1e-9);
  EXPECT_NEAR(quad.state().velocity.x, 1.0, 0.4);
}

TEST(Quadrotor, RejectsNonPositiveDt) {
  QuadrotorModel quad({});
  quad.reset({}, {});
  EXPECT_THROW(quad.step({}, 0.0), std::invalid_argument);
}

TEST(Quadrotor, FactoryBuildsQuadrotor) {
  const auto vehicle = make_vehicle(VehicleType::kQuadrotor);
  vehicle->reset({0, 0, 5}, {});
  for (int i = 0; i < 200; ++i) vehicle->step({0.5, 0, 0}, 0.01);
  EXPECT_GT(vehicle->state().velocity.x, 0.05);
}

TEST(Quadrotor, DefaultMassMatchesPaper) {
  // The paper's SwarmLab quadcopter weighs 0.296 kg by default.
  EXPECT_DOUBLE_EQ(QuadrotorParams{}.mass, 0.296);
}

}  // namespace
}  // namespace swarmfuzz::sim
