#include "sim/pid.h"

#include <gtest/gtest.h>

namespace swarmfuzz::sim {
namespace {

TEST(Pid, ProportionalOnly) {
  Pid pid(PidGains{.kp = 2.0});
  EXPECT_DOUBLE_EQ(pid.update(3.0, 0.1), 6.0);
  EXPECT_DOUBLE_EQ(pid.update(-1.0, 0.1), -2.0);
}

TEST(Pid, IntegralAccumulates) {
  Pid pid(PidGains{.ki = 1.0});
  EXPECT_DOUBLE_EQ(pid.update(1.0, 0.5), 0.5);   // integral = 0.5
  EXPECT_DOUBLE_EQ(pid.update(1.0, 0.5), 1.0);   // integral = 1.0
  EXPECT_DOUBLE_EQ(pid.integral(), 1.0);
}

TEST(Pid, DerivativeOnErrorSignal) {
  Pid pid(PidGains{.kd = 1.0});
  // First call has no history: derivative contribution is zero.
  EXPECT_DOUBLE_EQ(pid.update(1.0, 0.1), 0.0);
  // Error rose by 1 over 0.1 s -> derivative 10.
  EXPECT_DOUBLE_EQ(pid.update(2.0, 0.1), 10.0);
}

TEST(Pid, OutputSaturates) {
  Pid pid(PidGains{.kp = 100.0, .output_limit = 5.0});
  EXPECT_DOUBLE_EQ(pid.update(1.0, 0.1), 5.0);
  EXPECT_DOUBLE_EQ(pid.update(-1.0, 0.1), -5.0);
}

TEST(Pid, AntiWindupStopsIntegrationInSaturation) {
  Pid pid(PidGains{.kp = 1.0, .ki = 10.0, .output_limit = 1.0});
  for (int i = 0; i < 100; ++i) (void)pid.update(5.0, 0.1);
  // Without anti-windup the integral would reach 50; it must stay bounded
  // near the value where saturation began.
  EXPECT_LT(pid.integral(), 5.0);
  // Recovery: once the error flips, the output leaves saturation quickly.
  const double out = pid.update(-0.5, 0.1);
  EXPECT_LT(out, 1.0);
}

TEST(Pid, ResetClearsHistory) {
  Pid pid(PidGains{.ki = 1.0, .kd = 1.0});
  (void)pid.update(1.0, 0.1);
  (void)pid.update(2.0, 0.1);
  pid.reset();
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
  // Derivative history also gone: first post-reset call has no D term.
  EXPECT_DOUBLE_EQ(pid.update(5.0, 0.1), 0.5);  // only I: 5*0.1
}

TEST(Pid, RejectsInvalidInputs) {
  EXPECT_THROW(Pid(PidGains{.output_limit = 0.0}), std::invalid_argument);
  EXPECT_THROW(Pid(PidGains{.output_limit = -1.0}), std::invalid_argument);
  Pid pid(PidGains{.kp = 1.0});
  EXPECT_THROW((void)pid.update(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)pid.update(1.0, -0.1), std::invalid_argument);
}

TEST(Pid, ClosedLoopFirstOrderPlantConverges) {
  // Plant: x' = u. PI controller should drive x to the setpoint.
  Pid pid(PidGains{.kp = 2.0, .ki = 0.5, .output_limit = 10.0});
  double x = 0.0;
  const double setpoint = 3.0, dt = 0.01;
  for (int i = 0; i < 2000; ++i) {
    x += pid.update(setpoint - x, dt) * dt;
  }
  EXPECT_NEAR(x, setpoint, 0.05);
}

}  // namespace
}  // namespace swarmfuzz::sim
