#include "graph/pagerank.h"

#include <gtest/gtest.h>

#include <numeric>

#include "math/rng.h"

namespace swarmfuzz::graph {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRank, EmptyGraph) {
  const PageRankResult r = pagerank(Digraph(0));
  EXPECT_TRUE(r.scores.empty());
}

TEST(PageRank, SingleNodeGetsAllMass) {
  const PageRankResult r = pagerank(Digraph(1));
  ASSERT_EQ(r.scores.size(), 1u);
  EXPECT_NEAR(r.scores[0], 1.0, 1e-9);
}

TEST(PageRank, EdgelessGraphIsUniform) {
  const PageRankResult r = pagerank(Digraph(4));
  for (const double s : r.scores) EXPECT_NEAR(s, 0.25, 1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(PageRank, SinkNodeAccumulatesRank) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const PageRankResult r = pagerank(g);
  EXPECT_GT(r.scores[2], r.scores[0]);
  EXPECT_GT(r.scores[2], r.scores[1]);
  EXPECT_NEAR(r.scores[0], r.scores[1], 1e-9);  // symmetric sources
}

TEST(PageRank, CycleIsUniform) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const PageRankResult r = pagerank(g);
  for (const double s : r.scores) EXPECT_NEAR(s, 1.0 / 3.0, 1e-8);
}

TEST(PageRank, WeightsBiasDistribution) {
  // Node 0 links to both 1 and 2, but 2 gets 9x the weight.
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 9.0);
  const PageRankResult r = pagerank(g);
  EXPECT_GT(r.scores[2], r.scores[1]);
}

TEST(PageRank, DampingOneHalfStillSums) {
  Digraph g(3);
  g.add_edge(0, 1);
  const PageRankResult r = pagerank(g, {.damping = 0.5});
  EXPECT_NEAR(sum(r.scores), 1.0, 1e-9);
}

TEST(PageRank, ReportsIterationsAndConvergence) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const PageRankResult r = pagerank(g);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0);
  const PageRankResult capped = pagerank(g, {.max_iterations = 1});
  EXPECT_EQ(capped.iterations, 1);
}

// Property: on random graphs the scores form a probability distribution and
// every node keeps at least the teleport mass.
class PageRankRandomGraphs : public ::testing::TestWithParam<int> {};

TEST_P(PageRankRandomGraphs, ScoresAreAProbabilityDistribution) {
  const int n = GetParam();
  math::Rng rng(static_cast<std::uint64_t>(n) * 7919);
  Digraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.3)) {
        g.add_edge(i, j, rng.uniform(0.1, 1.0));
      }
    }
  }
  const PageRankResult r = pagerank(g);
  EXPECT_NEAR(sum(r.scores), 1.0, 1e-8);
  const double teleport_floor = (1.0 - 0.85) / n * 0.99;
  for (const double s : r.scores) {
    EXPECT_GE(s, teleport_floor);
    EXPECT_LE(s, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageRankRandomGraphs,
                         ::testing::Values(2, 3, 5, 10, 15, 50));

}  // namespace
}  // namespace swarmfuzz::graph
