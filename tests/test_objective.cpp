#include "fuzz/objective.h"

#include <gtest/gtest.h>

namespace swarmfuzz::fuzz {
namespace {

struct Fixture {
  Fixture()
      : mission(sim::generate_mission(mission_config(), 1005)),
        system(swarm::make_vasarhelyi_system()),
        simulator(sim_config()),
        clean(simulator.run(mission, *system)) {}

  static sim::MissionConfig mission_config() {
    sim::MissionConfig config;
    config.num_drones = 5;
    return config;
  }
  static sim::SimulationConfig sim_config() {
    sim::SimulationConfig config;
    config.dt = 0.05;
    config.gps.rate_hz = 20.0;
    return config;
  }

  Seed seed_for(int target, int victim) const {
    return Seed{.target = target,
                .victim = victim,
                .direction = attack::SpoofDirection::kRight,
                .vdo = clean.recorder.min_obstacle_distance(victim)};
  }

  sim::MissionSpec mission;
  std::unique_ptr<swarm::FlockingControlSystem> system;
  sim::Simulator simulator;
  sim::RunResult clean;
};

TEST(Objective, RejectsInvalidSeeds) {
  Fixture f;
  EXPECT_THROW(Objective(f.mission, f.simulator, *f.system, f.seed_for(0, 0), 10.0,
                         f.clean.end_time),
               std::invalid_argument);
  EXPECT_THROW(Objective(f.mission, f.simulator, *f.system, f.seed_for(-1, 1), 10.0,
                         f.clean.end_time),
               std::invalid_argument);
  EXPECT_THROW(Objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 0.0,
                         f.clean.end_time),
               std::invalid_argument);
  EXPECT_THROW(Objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                         0.0),
               std::invalid_argument);
}

TEST(Objective, ZeroDurationMatchesCleanRun) {
  Fixture f;
  Objective objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                      f.clean.end_time);
  // Duration projects up to one dt; the spoof is then a single-tick blip
  // whose effect is negligible: f should be close to the clean clearance.
  const ObjectiveEval eval = objective.evaluate(5.0, 0.0);
  const double clean_f =
      f.clean.recorder.min_obstacle_distance(1) - f.mission.drone_radius;
  EXPECT_NEAR(eval.f, clean_f, 0.35);
}

TEST(Objective, ProjectionEnforcesTimingConstraints) {
  Fixture f;
  Objective objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                      100.0);
  double t_s = -5.0, dt = 500.0;
  objective.project(t_s, dt);
  EXPECT_GE(t_s, 0.0);
  EXPECT_GT(dt, 0.0);
  EXPECT_LE(t_s + dt, 100.0 + 1e-9);

  t_s = 99.0;
  dt = 50.0;
  objective.project(t_s, dt);
  EXPECT_LE(t_s + dt, 100.0 + 1e-9);
}

TEST(Objective, CountsEvaluations) {
  Fixture f;
  Objective objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                      f.clean.end_time);
  EXPECT_EQ(objective.evaluations(), 0);
  (void)objective.evaluate(10.0, 5.0);
  (void)objective.evaluate(20.0, 5.0);
  EXPECT_EQ(objective.evaluations(), 2);
}

TEST(Objective, DeterministicEvaluation) {
  Fixture f;
  Objective a(f.mission, f.simulator, *f.system, f.seed_for(2, 1), 10.0,
              f.clean.end_time);
  Objective b(f.mission, f.simulator, *f.system, f.seed_for(2, 1), 10.0,
              f.clean.end_time);
  EXPECT_DOUBLE_EQ(a.evaluate(30.0, 15.0).f, b.evaluate(30.0, 15.0).f);
}

TEST(Objective, FIsClearanceAboveCollisionRadius) {
  Fixture f;
  Objective objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                      f.clean.end_time);
  const ObjectiveEval eval = objective.evaluate(30.0, 10.0);
  if (!eval.success) {
    EXPECT_GT(eval.f, 0.0);
  } else {
    EXPECT_LE(eval.f, 1e-9);
  }
}

TEST(Objective, SuccessNeverAttributedToTarget) {
  // Sweep a few windows; whenever success is reported the crashed drone must
  // not be the spoofed target (the paper's success metric).
  Fixture f;
  for (int target = 0; target < 3; ++target) {
    Seed seed = f.seed_for(target, target == 1 ? 2 : 1);
    Objective objective(f.mission, f.simulator, *f.system, seed, 10.0,
                        f.clean.end_time);
    for (double t_s = 20.0; t_s <= 50.0; t_s += 10.0) {
      const ObjectiveEval eval = objective.evaluate(t_s, 15.0);
      if (eval.success) {
        EXPECT_NE(eval.crashed_drone, seed.target);
      }
    }
  }
}

}  // namespace
}  // namespace swarmfuzz::fuzz
