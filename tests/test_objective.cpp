#include "fuzz/objective.h"

#include <gtest/gtest.h>

#include <span>

#include "fuzz/optimizer.h"

namespace swarmfuzz::fuzz {
namespace {

struct Fixture {
  Fixture()
      : mission(sim::generate_mission(mission_config(), 1005)),
        system(swarm::make_vasarhelyi_system()),
        simulator(sim_config()),
        clean(simulator.run(mission, *system)) {}

  static sim::MissionConfig mission_config() {
    sim::MissionConfig config;
    config.num_drones = 5;
    return config;
  }
  static sim::SimulationConfig sim_config() {
    sim::SimulationConfig config;
    config.dt = 0.05;
    config.gps.rate_hz = 20.0;
    return config;
  }

  Seed seed_for(int target, int victim) const {
    return Seed{.target = target,
                .victim = victim,
                .direction = attack::SpoofDirection::kRight,
                .vdo = clean.recorder.min_obstacle_distance(victim)};
  }

  sim::MissionSpec mission;
  std::unique_ptr<swarm::FlockingControlSystem> system;
  sim::Simulator simulator;
  sim::RunResult clean;
};

TEST(Objective, RejectsInvalidSeeds) {
  Fixture f;
  EXPECT_THROW(Objective(f.mission, f.simulator, *f.system, f.seed_for(0, 0), 10.0,
                         f.clean.end_time),
               std::invalid_argument);
  EXPECT_THROW(Objective(f.mission, f.simulator, *f.system, f.seed_for(-1, 1), 10.0,
                         f.clean.end_time),
               std::invalid_argument);
  EXPECT_THROW(Objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 0.0,
                         f.clean.end_time),
               std::invalid_argument);
  EXPECT_THROW(Objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                         0.0),
               std::invalid_argument);
}

TEST(Objective, ZeroDurationMatchesCleanRun) {
  Fixture f;
  Objective objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                      f.clean.end_time);
  // Duration projects up to one dt; the spoof is then a single-tick blip
  // whose effect is negligible: f should be close to the clean clearance.
  const ObjectiveEval eval = objective.evaluate(5.0, 0.0);
  const double clean_f =
      f.clean.recorder.min_obstacle_distance(1) - f.mission.drone_radius;
  EXPECT_NEAR(eval.f, clean_f, 0.35);
}

TEST(Objective, ProjectionEnforcesTimingConstraints) {
  Fixture f;
  Objective objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                      100.0);
  double t_s = -5.0, dt = 500.0;
  objective.project(t_s, dt);
  EXPECT_GE(t_s, 0.0);
  EXPECT_GT(dt, 0.0);
  EXPECT_LE(t_s + dt, 100.0 + 1e-9);

  t_s = 99.0;
  dt = 50.0;
  objective.project(t_s, dt);
  EXPECT_LE(t_s + dt, 100.0 + 1e-9);
}

TEST(Objective, CountsEvaluations) {
  Fixture f;
  Objective objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                      f.clean.end_time);
  EXPECT_EQ(objective.evaluations(), 0);
  (void)objective.evaluate(10.0, 5.0);
  (void)objective.evaluate(20.0, 5.0);
  EXPECT_EQ(objective.evaluations(), 2);
}

TEST(Objective, MemoAbsorbsDuplicateEvaluations) {
  Fixture f;
  Objective objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                      f.clean.end_time);
  const ObjectiveEval first = objective.evaluate(10.0, 5.0);
  const ObjectiveEval repeat = objective.evaluate(10.0, 5.0);
  EXPECT_EQ(objective.evaluations(), 1);  // the repeat cost no simulation
  EXPECT_EQ(objective.memo_hits(), 1);
  EXPECT_EQ(repeat.f, first.f);
  EXPECT_EQ(repeat.success, first.success);
  EXPECT_EQ(repeat.crashed_drone, first.crashed_drone);
  EXPECT_EQ(repeat.end_time, first.end_time);

  // Distinct raw inputs that project to the same feasible point also hit.
  const double over = f.clean.end_time + 100.0;
  (void)objective.evaluate(over, 5.0);
  EXPECT_EQ(objective.evaluations(), 2);
  (void)objective.evaluate(over + 50.0, 5.0);
  EXPECT_EQ(objective.evaluations(), 2);
  EXPECT_EQ(objective.memo_hits(), 2);
}

TEST(Objective, PrefixReuseIsBitIdentical) {
  Fixture f;
  // Record clean-run checkpoints for this mission once.
  PrefixCache prefix;
  const sim::RunResult recording = f.simulator.run(
      f.mission, *f.system,
      sim::RunHooks{.checkpoints = &prefix, .checkpoint_period = 5.0});
  prefix.set_source(recording.recorder);
  ASSERT_GE(prefix.size(), 2u);

  Objective with_prefix(f.mission, f.simulator, *f.system, f.seed_for(2, 1), 10.0,
                        f.clean.end_time, &prefix);
  Objective without(f.mission, f.simulator, *f.system, f.seed_for(2, 1), 10.0,
                    f.clean.end_time);
  for (double t_s = 10.0; t_s <= 40.0; t_s += 10.0) {
    const ObjectiveEval a = with_prefix.evaluate(t_s, 8.0);
    const ObjectiveEval b = without.evaluate(t_s, 8.0);
    EXPECT_EQ(a.f, b.f) << "t_s=" << t_s;
    EXPECT_EQ(a.success, b.success) << "t_s=" << t_s;
    EXPECT_EQ(a.crashed_drone, b.crashed_drone) << "t_s=" << t_s;
    EXPECT_EQ(a.target_caused, b.target_caused) << "t_s=" << t_s;
    EXPECT_EQ(a.end_time, b.end_time) << "t_s=" << t_s;
  }
  EXPECT_GT(with_prefix.prefix_steps_reused(), 0);
  EXPECT_EQ(without.prefix_steps_reused(), 0);
  EXPECT_LT(with_prefix.sim_steps_executed(), without.sim_steps_executed());
}

TEST(Objective, OptimizerDuplicateCostsNoSimulation) {
  // The descent loop's first iteration re-evaluates the multi-start winner;
  // the memo must serve it without a simulation. One start at (5, 2) with
  // fd_step 1 puts the four stencil probes at distinct feasible points, so
  // budget 2 costs exactly 1 (start) + 0 (memoised repeat) + 4 (stencil)
  // simulations.
  Fixture f;
  Objective objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                      f.clean.end_time);
  const StartPoint start{5.0, 2.0};
  const OptimizationResult outcome =
      optimize(objective, std::span<const StartPoint>{&start, 1}, 2, {});
  ASSERT_FALSE(outcome.success);  // precondition: no early success return
  EXPECT_EQ(outcome.iterations, 2);
  EXPECT_EQ(objective.evaluations(), 5);
  EXPECT_EQ(objective.memo_hits(), 1);
}

TEST(Objective, DeterministicEvaluation) {
  Fixture f;
  Objective a(f.mission, f.simulator, *f.system, f.seed_for(2, 1), 10.0,
              f.clean.end_time);
  Objective b(f.mission, f.simulator, *f.system, f.seed_for(2, 1), 10.0,
              f.clean.end_time);
  EXPECT_DOUBLE_EQ(a.evaluate(30.0, 15.0).f, b.evaluate(30.0, 15.0).f);
}

TEST(Objective, FIsClearanceAboveCollisionRadius) {
  Fixture f;
  Objective objective(f.mission, f.simulator, *f.system, f.seed_for(0, 1), 10.0,
                      f.clean.end_time);
  const ObjectiveEval eval = objective.evaluate(30.0, 10.0);
  if (!eval.success) {
    EXPECT_GT(eval.f, 0.0);
  } else {
    EXPECT_LE(eval.f, 1e-9);
  }
}

TEST(Objective, SuccessNeverAttributedToTarget) {
  // Sweep a few windows; whenever success is reported the crashed drone must
  // not be the spoofed target (the paper's success metric).
  Fixture f;
  for (int target = 0; target < 3; ++target) {
    Seed seed = f.seed_for(target, target == 1 ? 2 : 1);
    Objective objective(f.mission, f.simulator, *f.system, seed, 10.0,
                        f.clean.end_time);
    for (double t_s = 20.0; t_s <= 50.0; t_s += 10.0) {
      const ObjectiveEval eval = objective.evaluate(t_s, 15.0);
      if (eval.success) {
        EXPECT_NE(eval.crashed_drone, seed.target);
      }
    }
  }
}

}  // namespace
}  // namespace swarmfuzz::fuzz
