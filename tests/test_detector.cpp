#include "defense/detector.h"

#include <gtest/gtest.h>

#include "attack/spoofing.h"
#include "swarm/flocking_system.h"

namespace swarmfuzz::defense {
namespace {

TEST(InnovationDetector, RejectsInvalidConfig) {
  EXPECT_THROW(InnovationDetector({.threshold = 0.0}), std::invalid_argument);
  EXPECT_THROW(InnovationDetector({.threshold = 5.0, .required_hits = 0}),
               std::invalid_argument);
}

TEST(InnovationDetector, ConsistentMotionRaisesNoAlarm) {
  InnovationDetector detector({.threshold = 2.0, .required_hits = 1});
  for (int i = 0; i < 100; ++i) {
    const double t = i * 0.1;
    // Moving at exactly the reported velocity: zero innovation.
    EXPECT_FALSE(detector.observe({2.0 * t, 0, 10}, {2, 0, 0}, t));
  }
  EXPECT_FALSE(detector.alarmed());
  EXPECT_LT(detector.peak_innovation(), 1e-9);
}

TEST(InnovationDetector, PositionJumpTriggersAlarm) {
  InnovationDetector detector({.threshold = 2.0, .required_hits = 1});
  EXPECT_FALSE(detector.observe({0, 0, 10}, {2, 0, 0}, 0.0));
  // 10 m jump that the 2 m/s velocity cannot explain.
  EXPECT_TRUE(detector.observe({10, 0, 10}, {2, 0, 0}, 0.1));
  EXPECT_TRUE(detector.alarmed());
  EXPECT_NEAR(detector.alarm_time(), 0.1, 1e-9);
  EXPECT_GT(detector.peak_innovation(), 9.0);
}

TEST(InnovationDetector, SmallDeviationsBelowThresholdIgnored) {
  // The paper's premise: deviations within the standard-GPS-offset band do
  // not alarm the defense.
  InnovationDetector detector({.threshold = 10.0, .required_hits = 1});
  EXPECT_FALSE(detector.observe({0, 0, 10}, {2, 0, 0}, 0.0));
  EXPECT_FALSE(detector.observe({0.2 + 5.0, 0, 10}, {2, 0, 0}, 0.1));  // 5 m jump
  EXPECT_FALSE(detector.alarmed());
  EXPECT_GT(detector.peak_innovation(), 4.0);
}

TEST(InnovationDetector, RequiredHitsSuppressSingleGlitch) {
  InnovationDetector detector({.threshold = 2.0, .required_hits = 3});
  (void)detector.observe({0, 0, 10}, {}, 0.0);
  (void)detector.observe({5, 0, 10}, {}, 0.1);  // hit 1
  (void)detector.observe({5, 0, 10}, {}, 0.2);  // innovation 0: reset
  (void)detector.observe({10, 0, 10}, {}, 0.3); // hit 1 again
  EXPECT_FALSE(detector.alarmed());
  (void)detector.observe({15, 0, 10}, {}, 0.4); // hit 2
  (void)detector.observe({20, 0, 10}, {}, 0.5); // hit 3 -> alarm
  EXPECT_TRUE(detector.alarmed());
}

TEST(InnovationDetector, ResetClearsState) {
  InnovationDetector detector({.threshold = 1.0, .required_hits = 1});
  (void)detector.observe({0, 0, 0}, {}, 0.0);
  (void)detector.observe({9, 0, 0}, {}, 0.1);
  ASSERT_TRUE(detector.alarmed());
  detector.reset();
  EXPECT_FALSE(detector.alarmed());
  EXPECT_DOUBLE_EQ(detector.peak_innovation(), 0.0);
}

TEST(SwarmDetectionMonitor, RejectsEmptySwarm) {
  EXPECT_THROW(SwarmDetectionMonitor(0), std::invalid_argument);
}

TEST(SwarmDetectionMonitor, CleanMissionNoFalsePositives) {
  sim::MissionConfig mission_config;
  mission_config.num_drones = 5;
  const sim::MissionSpec mission = sim::generate_mission(mission_config, 1013);
  auto system = swarm::make_vasarhelyi_system();
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  const sim::Simulator simulator(config);
  SwarmDetectionMonitor monitor(5, {.threshold = 10.0});
  (void)simulator.run(mission, *system, nullptr, &monitor);
  EXPECT_FALSE(monitor.report().detected);
}

TEST(SwarmDetectionMonitor, SmallSpoofEvades_LargeSpoofDetected) {
  // End-to-end version of the paper's stealthiness claim.
  sim::MissionConfig mission_config;
  mission_config.num_drones = 5;
  const sim::MissionSpec mission = sim::generate_mission(mission_config, 1013);
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  const sim::Simulator simulator(config);

  const auto run_with_distance = [&](double distance) {
    auto system = swarm::make_vasarhelyi_system();
    const attack::SpoofingPlan plan{.target = 1,
                                    .direction = attack::SpoofDirection::kRight,
                                    .start_time = 20.0,
                                    .duration = 15.0,
                                    .distance = distance};
    const attack::GpsSpoofer spoofer(plan, mission);
    SwarmDetectionMonitor monitor(5, {.threshold = 10.0});
    (void)simulator.run(mission, *system, &spoofer, &monitor);
    return monitor.report();
  };

  EXPECT_FALSE(run_with_distance(5.0).detected);   // inside the blind band
  EXPECT_FALSE(run_with_distance(9.0).detected);
  EXPECT_TRUE(run_with_distance(30.0).detected);   // far above the threshold
}

TEST(SwarmDetectionMonitor, ReportsFirstAlarmingDrone) {
  SwarmDetectionMonitor monitor(2, {.threshold = 1.0, .required_hits = 1});
  sim::WorldSnapshot snap;
  snap.push_back({0, {0, 0, 0}, {}});
  snap.push_back({1, {10, 0, 0}, {}});
  monitor.on_step(0.0, snap, {});
  snap.gps_position[1] = {25, 0, 0};  // drone 1 jumps
  monitor.on_step(0.1, snap, {});
  const DetectionReport report = monitor.report();
  ASSERT_TRUE(report.detected);
  EXPECT_EQ(report.drone, 1);
  EXPECT_NEAR(report.time, 0.1, 1e-9);
}

}  // namespace
}  // namespace swarmfuzz::defense
