#include "fuzz/fuzzer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "swarm/vasarhelyi.h"

namespace swarmfuzz::fuzz {
namespace {

FuzzerConfig fast_config(double spoof_distance = 10.0) {
  FuzzerConfig config;
  config.spoof_distance = spoof_distance;
  config.sim.dt = 0.05;
  config.sim.gps.rate_hz = 20.0;
  return config;
}

sim::MissionSpec mission_with(std::uint64_t seed, int drones = 5) {
  sim::MissionConfig config;
  config.num_drones = drones;
  return sim::generate_mission(config, seed);
}

TEST(Fuzzer, KindNames) {
  EXPECT_EQ(fuzzer_kind_name(FuzzerKind::kSwarmFuzz), "SwarmFuzz");
  EXPECT_EQ(fuzzer_kind_name(FuzzerKind::kRandom), "R_Fuzz");
  EXPECT_EQ(fuzzer_kind_name(FuzzerKind::kGradientOnly), "G_Fuzz");
  EXPECT_EQ(fuzzer_kind_name(FuzzerKind::kSvgOnly), "S_Fuzz");
  EXPECT_EQ(fuzzer_kind_name(FuzzerKind::kEvolutionary), "E_Fuzz");
}

TEST(Fuzzer, FactoryBuildsEachKind) {
  const FuzzerConfig config = fast_config();
  EXPECT_EQ(make_fuzzer(FuzzerKind::kSwarmFuzz, config)->name(), "SwarmFuzz");
  EXPECT_EQ(make_fuzzer(FuzzerKind::kRandom, config)->name(), "R_Fuzz");
  EXPECT_EQ(make_fuzzer(FuzzerKind::kGradientOnly, config)->name(), "G_Fuzz");
  EXPECT_EQ(make_fuzzer(FuzzerKind::kSvgOnly, config)->name(), "S_Fuzz");
  EXPECT_EQ(make_fuzzer(FuzzerKind::kEvolutionary, config)->name(), "E_Fuzz");
}

TEST(Fuzzer, SwarmFuzzFindsKnownVulnerableMission) {
  // Mission seed 1013 is attackable at 10 m spoofing (established by
  // exhaustive grid search during development).
  auto fuzzer = make_fuzzer(FuzzerKind::kSwarmFuzz, fast_config(10.0));
  const FuzzResult result = fuzzer->fuzz(mission_with(1013));
  ASSERT_TRUE(result.found);
  EXPECT_GE(result.victim, 0);
  EXPECT_NE(result.victim, result.plan.target);
  EXPECT_GT(result.plan.duration, 0.0);
  EXPECT_GE(result.plan.start_time, 0.0);
  EXPECT_DOUBLE_EQ(result.plan.distance, 10.0);
  EXPECT_GT(result.iterations, 0);
  EXPECT_GT(result.simulations, result.iterations);  // stencil costs included
}

TEST(Fuzzer, FoundPlanReproducesTheCollision) {
  auto fuzzer = make_fuzzer(FuzzerKind::kSwarmFuzz, fast_config(10.0));
  const sim::MissionSpec mission = mission_with(1013);
  const FuzzResult result = fuzzer->fuzz(mission);
  ASSERT_TRUE(result.found);

  // Replay the reported plan in a fresh simulator: the reported victim must
  // crash into the obstacle (paper: all found SPVs validate as TPs).
  auto system = swarm::make_vasarhelyi_system();
  const sim::Simulator simulator(fast_config().sim);
  const attack::GpsSpoofer spoofer(result.plan, mission);
  const sim::RunResult replay = simulator.run(mission, *system, &spoofer);
  ASSERT_TRUE(replay.first_collision.has_value());
  EXPECT_EQ(replay.first_collision->kind, sim::CollisionKind::kDroneObstacle);
  EXPECT_EQ(replay.first_collision->drone, result.victim);
}

TEST(Fuzzer, ReportsNoFindingOnRobustMission) {
  // Mission seed 1000 resisted the exhaustive grid at 10 m spoofing.
  auto fuzzer = make_fuzzer(FuzzerKind::kSwarmFuzz, fast_config(10.0));
  const FuzzResult result = fuzzer->fuzz(mission_with(1000));
  EXPECT_FALSE(result.found);
  EXPECT_FALSE(result.clean_run_failed);
  EXPECT_GT(result.iterations, 0);
  EXPECT_FALSE(result.attempts.empty());
}

TEST(Fuzzer, RespectsMissionBudget) {
  FuzzerConfig config = fast_config(5.0);
  config.mission_budget = 10;
  auto fuzzer = make_fuzzer(FuzzerKind::kSwarmFuzz, config);
  const FuzzResult result = fuzzer->fuzz(mission_with(1000));
  EXPECT_LE(result.iterations, 10 + config.per_seed_budget);
}

TEST(Fuzzer, RandomFuzzerUsesBudgetAndIsDeterministic) {
  FuzzerConfig config = fast_config(10.0);
  config.mission_budget = 8;
  auto a = make_fuzzer(FuzzerKind::kRandom, config);
  auto b = make_fuzzer(FuzzerKind::kRandom, config);
  const sim::MissionSpec mission = mission_with(1002);
  const FuzzResult ra = a->fuzz(mission);
  const FuzzResult rb = b->fuzz(mission);
  EXPECT_EQ(ra.found, rb.found);
  EXPECT_EQ(ra.iterations, rb.iterations);
  EXPECT_LE(ra.iterations, 8);
}

TEST(Fuzzer, SvgOnlyFuzzerStopsWithoutSeeds) {
  FuzzerConfig config = fast_config(10.0);
  auto fuzzer = make_fuzzer(FuzzerKind::kSvgOnly, config);
  sim::MissionSpec mission = mission_with(1002);
  mission.obstacles = sim::ObstacleField{};  // no obstacle: no seeds
  const FuzzResult result = fuzzer->fuzz(mission);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.iterations, 0);
  // A mission with nothing to fuzz must be distinguishable from a cheap
  // success-free run.
  EXPECT_TRUE(result.no_seeds);
  EXPECT_EQ(result.attempts_tried, 0);
}

TEST(Fuzzer, SwarmFuzzMarksNoSeedsToo) {
  auto fuzzer = make_fuzzer(FuzzerKind::kSwarmFuzz, fast_config(10.0));
  sim::MissionSpec mission = mission_with(1002);
  mission.obstacles = sim::ObstacleField{};
  const FuzzResult result = fuzzer->fuzz(mission);
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.no_seeds);
}

TEST(Fuzzer, SingleDroneMissionMarksNoSeedsForEveryKind) {
  // Regression: R_Fuzz and G_Fuzz drew a victim via uniform_int(0, n - 2)
  // before checking n, so a 1-drone mission hit the empty-range RNG
  // precondition. Every fuzzer must now report the degenerate swarm as
  // no_seeds instead.
  // The generator refuses to build a 1-drone mission, but one can still
  // arrive hand-built or through deserialization; truncate a generated spec.
  sim::MissionSpec mission = mission_with(1002);
  mission.initial_positions.resize(1);
  ASSERT_EQ(mission.num_drones(), 1);
  for (const FuzzerKind kind :
       {FuzzerKind::kSwarmFuzz, FuzzerKind::kRandom, FuzzerKind::kGradientOnly,
        FuzzerKind::kSvgOnly, FuzzerKind::kEvolutionary}) {
    auto fuzzer = make_fuzzer(kind, fast_config(10.0));
    const FuzzResult result = fuzzer->fuzz(mission);
    EXPECT_FALSE(result.found) << fuzzer->name();
    EXPECT_TRUE(result.no_seeds) << fuzzer->name();
    EXPECT_EQ(result.iterations, 0) << fuzzer->name();
    EXPECT_EQ(result.attempts_tried, 0) << fuzzer->name();
  }
}

TEST(Fuzzer, MissionVdoIsNaNWithoutObstacles) {
  // Regression: the old min-fold let the all-infinite VDOs of an
  // obstacle-free clean run leak +inf into mission_vdo, which JSON-nulls to
  // NaN on reload and breaks the bit-exact checkpoint round trip
  // (same_double(inf, NaN) is false). Non-finite folds must yield NaN.
  auto fuzzer = make_fuzzer(FuzzerKind::kSwarmFuzz, fast_config(10.0));
  sim::MissionSpec mission = mission_with(1002);
  mission.obstacles = sim::ObstacleField{};
  const FuzzResult result = fuzzer->fuzz(mission);
  EXPECT_TRUE(result.no_seeds);
  EXPECT_TRUE(std::isnan(result.mission_vdo));
}

TEST(Fuzzer, RandomFuzzerRecordsFailedAttempts) {
  // Historically only the winning draw was recorded, so R_Fuzz/S_Fuzz
  // telemetry undercounted attempts relative to the gradient fuzzers.
  FuzzerConfig config = fast_config(10.0);
  config.mission_budget = 8;
  auto fuzzer = make_fuzzer(FuzzerKind::kRandom, config);
  const FuzzResult result = fuzzer->fuzz(mission_with(1000));  // robust mission
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.iterations, 8);
  EXPECT_EQ(result.attempts_tried, 8);
  ASSERT_EQ(result.attempts.size(), 8u);
  for (const SeedAttempt& attempt : result.attempts) {
    EXPECT_FALSE(attempt.outcome.success);
    EXPECT_EQ(attempt.outcome.iterations, 1);
  }
}

TEST(Fuzzer, GradientFuzzerCountsAttemptedSeeds) {
  auto fuzzer = make_fuzzer(FuzzerKind::kSwarmFuzz, fast_config(10.0));
  const FuzzResult result = fuzzer->fuzz(mission_with(1000));
  EXPECT_GT(result.attempts_tried, 0);
  EXPECT_EQ(result.attempts_tried, static_cast<int>(result.attempts.size()));
}

TEST(Fuzzer, GradientOnlyTriesRandomPairs) {
  FuzzerConfig config = fast_config(10.0);
  config.mission_budget = 12;
  auto fuzzer = make_fuzzer(FuzzerKind::kGradientOnly, config);
  const FuzzResult result = fuzzer->fuzz(mission_with(1002));
  EXPECT_GT(result.iterations, 0);
  for (const SeedAttempt& attempt : result.attempts) {
    EXPECT_NE(attempt.seed.target, attempt.seed.victim);
    EXPECT_DOUBLE_EQ(attempt.seed.influence, 0.0);  // no SVG used
  }
}

TEST(Fuzzer, MissionVdoIsMinOverDrones) {
  auto fuzzer = make_fuzzer(FuzzerKind::kSwarmFuzz, fast_config(5.0));
  const FuzzResult result = fuzzer->fuzz(mission_with(1003));
  EXPECT_GT(result.mission_vdo, 0.0);
  for (const SeedAttempt& attempt : result.attempts) {
    EXPECT_GE(attempt.seed.vdo, result.mission_vdo - 1e-9);
  }
}

TEST(Fuzzer, CustomControllerIsHonoured) {
  // An extremely timid controller parameterisation still runs end-to-end.
  swarm::VasarhelyiParams params;
  params.v_flock = 1.0;
  auto controller = std::make_shared<swarm::VasarhelyiController>(params);
  FuzzerConfig config = fast_config(10.0);
  config.mission_budget = 5;
  auto fuzzer = make_fuzzer(FuzzerKind::kSwarmFuzz, config, controller);
  const FuzzResult result = fuzzer->fuzz(mission_with(1001));
  EXPECT_GE(result.simulations, 1);
}

}  // namespace
}  // namespace swarmfuzz::fuzz
