#include "sim/world.h"

#include <gtest/gtest.h>

namespace swarmfuzz::sim {
namespace {

MissionSpec small_mission() {
  MissionSpec mission;
  mission.initial_positions = {{0, 0, 10}, {10, 0, 10}, {0, 10, 10}};
  mission.destination = {100, 0, 10};
  return mission;
}

TEST(World, InitialStateMatchesMission) {
  const World world(small_mission(), VehicleType::kPointMass);
  EXPECT_EQ(world.num_drones(), 3);
  EXPECT_DOUBLE_EQ(world.time(), 0.0);
  EXPECT_EQ(world.state(1).position, Vec3(10, 0, 10));
  EXPECT_EQ(world.state(1).velocity, Vec3{});
}

TEST(World, StepAdvancesTimeAndStates) {
  World world(small_mission(), VehicleType::kPointMass);
  const std::vector<Vec3> desired{{1, 0, 0}, {0, 1, 0}, {0, 0, 0}};
  world.step(desired, 0.05);
  EXPECT_DOUBLE_EQ(world.time(), 0.05);
  EXPECT_GT(world.state(0).velocity.x, 0.0);
  EXPECT_GT(world.state(1).velocity.y, 0.0);
  EXPECT_EQ(world.state(2).velocity, Vec3{});
}

TEST(World, StatesReturnsAllDrones) {
  World world(small_mission(), VehicleType::kPointMass);
  const auto states = world.states();
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[2].position, Vec3(0, 10, 10));
}

TEST(World, MismatchedDesiredSizeThrows) {
  World world(small_mission(), VehicleType::kPointMass);
  const std::vector<Vec3> wrong(2);
  EXPECT_THROW(world.step(wrong, 0.05), std::invalid_argument);
}

TEST(World, BadDroneIdThrows) {
  const World world(small_mission(), VehicleType::kPointMass);
  EXPECT_THROW((void)world.state(3), std::out_of_range);
  EXPECT_THROW((void)world.state(-1), std::out_of_range);
}

TEST(World, QuadrotorVehiclesSupported) {
  World world(small_mission(), VehicleType::kQuadrotor);
  const std::vector<Vec3> desired{{1, 0, 0}, {1, 0, 0}, {1, 0, 0}};
  for (int i = 0; i < 100; ++i) world.step(desired, 0.01);
  EXPECT_GT(world.state(0).velocity.x, 0.1);
  EXPECT_NEAR(world.time(), 1.0, 1e-9);
}

TEST(World, DronesEvolveIndependently) {
  World world(small_mission(), VehicleType::kPointMass);
  const std::vector<Vec3> desired{{2, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  for (int i = 0; i < 50; ++i) world.step(desired, 0.05);
  EXPECT_GT(world.state(0).position.x, 1.0);
  EXPECT_EQ(world.state(1).position, Vec3(10, 0, 10));
}

}  // namespace
}  // namespace swarmfuzz::sim
