// Sharded campaign service tests (DESIGN.md section 13): manifest round
// trips, shard workers claiming and resuming leases, kill-mid-range
// reclamation, and the headline invariant — the merged report of any worker
// schedule is bit-identical (deterministic_equal) to a single-process run.
#include "fuzz/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/shard_merge.h"
#include "fuzz/telemetry.h"
#include "sim/simulator.h"
#include "util/retry.h"

namespace swarmfuzz::fuzz {
namespace {

std::string service_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path{::testing::TempDir()} / ("swarmfuzz_svc_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

CampaignConfig small_campaign(int missions = 6) {
  CampaignConfig config;
  config.num_missions = missions;
  config.mission.num_drones = 5;
  config.fuzzer.spoof_distance = 10.0;
  config.fuzzer.sim.dt = 0.05;
  config.fuzzer.sim.gps.rate_hz = 20.0;
  config.fuzzer.mission_budget = 12;  // keep tests fast
  config.num_threads = 2;
  return config;
}

// ---------------------------------------------------------------------------
// Manifest.

TEST(ServiceManifest, RoundTripsThroughJsonl) {
  ServiceManifest manifest;
  manifest.config_hash = "0123456789abcdef";
  manifest.num_missions = 60;
  manifest.num_leases = 8;
  manifest.lease_ttl_ms = 9007199254740993;  // above the 53-bit double bound
  manifest.campaign_args = {"--missions=60", "--seed=1000", "--drones=5"};
  const ServiceManifest parsed = service_manifest_from_json(to_jsonl(manifest));
  EXPECT_EQ(parsed.schema_version, 1);
  EXPECT_EQ(parsed.config_hash, manifest.config_hash);
  EXPECT_EQ(parsed.num_missions, 60);
  EXPECT_EQ(parsed.num_leases, 8);
  EXPECT_EQ(parsed.lease_ttl_ms, manifest.lease_ttl_ms);
  EXPECT_EQ(parsed.campaign_args, manifest.campaign_args);
}

TEST(ServiceManifest, CrcFramingRejectsTampering) {
  ServiceManifest manifest;
  manifest.config_hash = "0123456789abcdef";
  manifest.num_missions = 10;
  manifest.num_leases = 2;
  std::string line = to_jsonl(manifest);
  const auto pos = line.find("\"missions\":10");
  ASSERT_NE(pos, std::string::npos);
  line[pos + 11] = '2';  // 10 -> 20: an edited manifest must be rejected
  EXPECT_THROW((void)service_manifest_from_json(line), std::invalid_argument);
}

TEST(ServiceManifest, WriteLoadRoundTripsThroughDirectory) {
  const std::string dir = service_dir("manifest");
  ServiceManifest manifest;
  manifest.config_hash = "feedfacecafebeef";
  manifest.num_missions = 12;
  manifest.num_leases = 3;
  manifest.campaign_args = {"--missions=12"};
  write_manifest(dir, manifest);
  const ServiceManifest loaded = load_manifest(dir);
  EXPECT_EQ(loaded.config_hash, manifest.config_hash);
  EXPECT_EQ(loaded.num_missions, 12);
  EXPECT_EQ(loaded.num_leases, 3);
  EXPECT_EQ(loaded.campaign_args, manifest.campaign_args);
}

TEST(ServiceManifest, LoadWithoutServeFailsWithHint) {
  const std::string dir = service_dir("no_manifest");
  try {
    (void)load_manifest(dir);
    FAIL() << "missing manifest did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("swarmfuzz serve"), std::string::npos);
  }
}

TEST(ServiceLeases, DoneMarkersGateCompletion) {
  const std::string dir = service_dir("done_markers");
  EXPECT_FALSE(all_leases_done(dir, 2));
  EXPECT_FALSE(service_complete(dir, 8, 2));
  EXPECT_FALSE(wait_for_service(dir, 8, 2, /*timeout_ms=*/50, /*poll_ms=*/5));
  LeaseStore store(dir, 1000, "alice");
  store.mark_done(0);
  EXPECT_FALSE(all_leases_done(dir, 2));
  EXPECT_FALSE(service_complete(dir, 8, 2));
  store.mark_done(1);
  EXPECT_TRUE(all_leases_done(dir, 2));
  EXPECT_TRUE(service_complete(dir, 8, 2));
  EXPECT_TRUE(wait_for_service(dir, 8, 2, /*timeout_ms=*/50, /*poll_ms=*/5));
}

// ---------------------------------------------------------------------------
// Shard workers.

TEST(ShardWorker, SingleWorkerCompletesServiceAndMergesBitIdentical) {
  const std::string dir = service_dir("single_worker");
  const CampaignConfig campaign = small_campaign();

  std::int64_t now = 0;
  ShardWorkerConfig worker;
  worker.campaign = campaign;
  worker.dir = dir;
  worker.num_leases = 3;
  worker.lease_ttl_ms = 1000;
  worker.owner = "solo";
  worker.clock = [&now] { return now; };
  worker.sleep_ms = [&now](std::int64_t ms) { now += ms; };
  const ShardWorkerStats stats = run_shard_worker(worker);

  EXPECT_EQ(stats.leases_claimed, 3);
  EXPECT_EQ(stats.leases_abandoned, 0);
  EXPECT_EQ(stats.missions_run, campaign.num_missions);
  EXPECT_EQ(stats.missions_resumed, 0);
  EXPECT_TRUE(all_leases_done(dir, 3));

  // Each shard stream is stamped with its lease id and covers its range.
  const auto leases = carve_leases(campaign.num_missions, 3);
  for (const LeaseRange& lease : leases) {
    const auto records = load_telemetry(shard_telemetry_path(dir, lease.lease_id));
    ASSERT_EQ(records.size(), static_cast<std::size_t>(lease.size()));
    for (const TelemetryRecord& record : records) {
      EXPECT_EQ(record.shard, lease.lease_id);
      EXPECT_GE(record.mission_index, lease.begin);
      EXPECT_LT(record.mission_index, lease.end);
    }
  }

  ShardMergeStats merge_stats;
  const CampaignResult merged =
      merge_shards(campaign, dir, /*allow_partial=*/false, &merge_stats);
  EXPECT_EQ(merge_stats.shard_files, 3);
  EXPECT_EQ(merge_stats.records, campaign.num_missions);
  EXPECT_EQ(merge_stats.duplicates, 0);
  EXPECT_TRUE(deterministic_equal(merged, run_campaign(campaign)));
}

TEST(ShardWorker, MergeRefusesPartialServiceUnlessAsked) {
  const std::string dir = service_dir("partial_merge");
  const CampaignConfig campaign = small_campaign();

  std::int64_t now = 0;
  ShardWorkerConfig worker;
  worker.campaign = campaign;
  worker.dir = dir;
  worker.num_leases = 2;
  worker.owner = "solo";
  worker.clock = [&now] { return now; };
  worker.sleep_ms = [&now](std::int64_t ms) { now += ms; };
  (void)run_shard_worker(worker);

  // Losing a whole shard stream must fail the merge loudly, not shrink the
  // campaign; --allow-partial is the explicit override.
  std::filesystem::remove(shard_telemetry_path(dir, 1));
  EXPECT_THROW((void)merge_shards(campaign, dir), std::runtime_error);
  ShardMergeStats stats;
  const CampaignResult partial =
      merge_shards(campaign, dir, /*allow_partial=*/true, &stats);
  EXPECT_EQ(stats.shard_files, 1);
  EXPECT_LT(partial.num_completed(), campaign.num_missions);
}

TEST(ShardWorker, ReclaimResumesKilledWorkersPartialShard) {
  // Reference service: one lease over the whole campaign, run to completion
  // so we can replay a prefix of its shard stream as the "killed" worker's
  // surviving records.
  const CampaignConfig campaign = small_campaign();
  const std::string ref_dir = service_dir("reclaim_ref");
  std::int64_t ref_now = 0;
  ShardWorkerConfig ref;
  ref.campaign = campaign;
  ref.dir = ref_dir;
  ref.num_leases = 1;
  ref.owner = "ref";
  ref.clock = [&ref_now] { return ref_now; };
  ref.sleep_ms = [&ref_now](std::int64_t ms) { ref_now += ms; };
  (void)run_shard_worker(ref);
  const auto ref_records = load_telemetry(shard_telemetry_path(ref_dir, 0));
  ASSERT_EQ(ref_records.size(), static_cast<std::size_t>(campaign.num_missions));

  // The crash scene: a victim claimed the lease, recorded two missions, was
  // SIGKILLed mid-write of the third (torn tail), and never renewed.
  const std::string dir = service_dir("reclaim");
  std::int64_t now = 0;
  LeaseStore victim(dir, 1000, "victim", [&now] { return now; });
  ASSERT_TRUE(victim.try_claim(0));
  const std::string shard_path = shard_telemetry_path(dir, 0);
  append_jsonl_line(shard_path, to_jsonl(ref_records[0]));
  append_jsonl_line(shard_path, to_jsonl(ref_records[1]));
  {
    std::FILE* file = std::fopen(shard_path.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const char torn[] = "{\"v\":1,\"mission\":2,\"fu";  // no newline: torn
    std::fwrite(torn, 1, sizeof torn - 1, file);
    std::fclose(file);
  }

  now = 2000;  // the victim's claim lapsed long ago
  ShardWorkerConfig rescuer;
  rescuer.campaign = campaign;
  rescuer.dir = dir;
  rescuer.num_leases = 1;
  rescuer.lease_ttl_ms = 1000;
  rescuer.owner = "rescuer";
  rescuer.clock = [&now] { return now; };
  rescuer.sleep_ms = [&now](std::int64_t ms) { now += ms; };
  const ShardWorkerStats stats = run_shard_worker(rescuer);

  // The rescuer reclaimed the lease, healed the torn tail, kept the two
  // durable records, and ran exactly the missing missions.
  EXPECT_EQ(stats.leases_claimed, 1);
  EXPECT_EQ(stats.missions_resumed, 2);
  EXPECT_EQ(stats.missions_run, campaign.num_missions - 2);
  EXPECT_EQ(stats.leases_abandoned, 0);
  EXPECT_TRUE(all_leases_done(dir, 1));

  // No mission lost, none duplicated, and the merged report is bit-identical
  // to a single-process campaign.
  ShardMergeStats merge_stats;
  const CampaignResult merged =
      merge_shards(campaign, dir, /*allow_partial=*/false, &merge_stats);
  EXPECT_EQ(merge_stats.records, campaign.num_missions);
  EXPECT_EQ(merge_stats.duplicates, 0);
  EXPECT_TRUE(deterministic_equal(merged, run_campaign(campaign)));
}

TEST(ShardWorker, WaitsOutLiveClaimThenReclaimsExpired) {
  const std::string dir = service_dir("live_claim");
  const CampaignConfig campaign = small_campaign();

  // Another (live, then dead) worker holds lease 0; our worker must respect
  // the claim while it is valid, make progress elsewhere, and only take the
  // lease over once the TTL lapses.
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore blocker(dir, 1000, "blocker", clock);
  ASSERT_TRUE(blocker.try_claim(0));

  int sleeps = 0;
  ShardWorkerConfig worker;
  worker.campaign = campaign;
  worker.dir = dir;
  worker.num_leases = 2;
  worker.lease_ttl_ms = 1000;
  worker.owner = "worker";
  worker.clock = clock;
  worker.sleep_ms = [&now, &sleeps](std::int64_t ms) {
    now += ms;
    ++sleeps;
  };
  const ShardWorkerStats stats = run_shard_worker(worker);

  EXPECT_GE(sleeps, 1);  // it did wait on the blocker's valid claim
  EXPECT_EQ(stats.leases_claimed, 2);
  EXPECT_EQ(stats.missions_run, campaign.num_missions);
  EXPECT_TRUE(all_leases_done(dir, 2));
  EXPECT_TRUE(deterministic_equal(merge_shards(campaign, dir),
                                  run_campaign(campaign)));
}

TEST(ShardWorker, QuarantineIsDedupedAcrossReclaim) {
  CampaignConfig campaign = small_campaign();
  campaign.fault_injections = parse_fault_plan("nan@1");
  campaign.max_fault_retries = 0;  // mission 1 is terminally faulted

  const std::string dir = service_dir("quarantine_dedup");
  std::int64_t now = 0;
  ShardWorkerConfig worker;
  worker.campaign = campaign;
  worker.dir = dir;
  worker.num_leases = 1;
  worker.owner = "first";
  worker.clock = [&now] { return now; };
  worker.sleep_ms = [&now](std::int64_t ms) { now += ms; };
  (void)run_shard_worker(worker);

  const std::string shard_path = shard_telemetry_path(dir, 0);
  const std::string quarantine_path = shard_path + ".quarantine";
  ASSERT_EQ(load_quarantine(quarantine_path).size(), 1u);

  // Reclaim scenario where the quarantine append survived but the shard
  // record for the faulted mission did not: drop every record past mission 0
  // and clear the claim/done state, as if the worker died right after
  // quarantining. The successor re-runs mission 1 (it faults again,
  // deterministically) but must not append a second quarantine record.
  const auto records = load_telemetry(shard_path);
  ASSERT_GE(records.size(), 2u);
  std::filesystem::remove(shard_path);
  append_jsonl_line(shard_path, to_jsonl(records[0]));
  std::filesystem::remove(dir + "/lease-0.claim");
  std::filesystem::remove(dir + "/lease-0.done");

  worker.owner = "second";
  const ShardWorkerStats stats = run_shard_worker(worker);
  EXPECT_EQ(stats.missions_resumed, 1);
  EXPECT_EQ(stats.missions_run, campaign.num_missions - 1);
  EXPECT_EQ(load_quarantine(quarantine_path).size(), 1u);
}

TEST(ShardWorker, ThreeConcurrentWorkersMergeBitIdenticalPointMass) {
  const CampaignConfig campaign = small_campaign();
  const std::string dir = service_dir("three_pointmass");

  std::vector<ShardWorkerStats> stats(3);
  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      ShardWorkerConfig worker;
      worker.campaign = campaign;
      worker.dir = dir;
      worker.num_leases = 3;
      worker.lease_ttl_ms = 5000;  // generous: nothing should expire
      worker.owner = "worker-" + std::to_string(i);
      stats[i] = run_shard_worker(worker);
    });
  }
  for (std::thread& worker : workers) worker.join();

  int total_run = 0;
  for (const ShardWorkerStats& s : stats) total_run += s.missions_run;
  EXPECT_EQ(total_run, campaign.num_missions);  // no duplicated work
  EXPECT_TRUE(all_leases_done(dir, 3));

  ShardMergeStats merge_stats;
  const CampaignResult merged =
      merge_shards(campaign, dir, /*allow_partial=*/false, &merge_stats);
  EXPECT_EQ(merge_stats.records, campaign.num_missions);
  EXPECT_TRUE(deterministic_equal(merged, run_campaign(campaign)));
}

// ---------------------------------------------------------------------------
// Chaos harness.

TEST(ChaosPlan, ParsesTheGrammar) {
  EXPECT_TRUE(parse_chaos_plan("").empty());
  const ChaosPlan plan = parse_chaos_plan("kill@3,hang@1,torn-write@2,eio@4x3");
  ASSERT_EQ(plan.actions.size(), 4u);
  EXPECT_EQ(plan.actions[0].kind, ChaosAction::Kind::kKill);
  EXPECT_EQ(plan.actions[0].mission_index, 3);
  EXPECT_EQ(plan.actions[1].kind, ChaosAction::Kind::kHang);
  EXPECT_EQ(plan.actions[2].kind, ChaosAction::Kind::kTornWrite);
  EXPECT_EQ(plan.actions[3].kind, ChaosAction::Kind::kEio);
  EXPECT_EQ(plan.actions[3].mission_index, 4);
  EXPECT_EQ(plan.actions[3].count, 3);
}

TEST(ChaosPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_chaos_plan("kill"), std::invalid_argument);
  EXPECT_THROW((void)parse_chaos_plan("explode@1"), std::invalid_argument);
  EXPECT_THROW((void)parse_chaos_plan("kill@x"), std::invalid_argument);
  EXPECT_THROW((void)parse_chaos_plan("eio@1x0"), std::invalid_argument);
  EXPECT_THROW((void)parse_chaos_plan("kill@-2"), std::invalid_argument);
}

TEST(ChaosShardWorker, InjectedEioIsAbsorbedByTheRetryLayer) {
  util::io_retrier().reset();
  const CampaignConfig campaign = small_campaign();
  const std::string dir = service_dir("chaos_eio");

  std::int64_t now = 0;
  ShardWorkerConfig worker;
  worker.campaign = campaign;
  worker.dir = dir;
  worker.num_leases = 2;
  worker.owner = "eio";
  worker.clock = [&now] { return now; };
  worker.sleep_ms = [&now](std::int64_t ms) { now += ms; };
  worker.chaos = parse_chaos_plan("eio@1x2");
  const ShardWorkerStats stats = run_shard_worker(worker);

  // Two injected failures, zero lost work: the shard append retried through.
  EXPECT_EQ(stats.missions_run, campaign.num_missions);
  EXPECT_EQ(stats.io_aborts, 0);
  EXPECT_GE(util::io_retrier().counters().retries, 2);
  EXPECT_TRUE(deterministic_equal(merge_shards(campaign, dir),
                                  run_campaign(campaign)));
  util::io_retrier().reset();
}

TEST(ChaosShardWorker, KillBeforeRecordLosesOnlyTheInFlightMission) {
  const CampaignConfig campaign = small_campaign();
  const std::string dir = service_dir("chaos_kill");

  std::int64_t now = 0;
  int kills = 0;
  ShardWorkerConfig worker;
  worker.campaign = campaign;
  worker.dir = dir;
  worker.num_leases = 2;
  worker.owner = "mortal";
  worker.clock = [&now] { return now; };
  worker.sleep_ms = [&now](std::int64_t ms) { now += ms; };
  worker.chaos = parse_chaos_plan("kill@1");
  // In-process stand-in for SIGKILL: count it and let run_lease's abandon
  // path model the restart (the worker rescans and re-claims its own lease,
  // exactly like a fresh process would).
  worker.chaos_kill = [&kills] { ++kills; };
  const ShardWorkerStats stats = run_shard_worker(worker);

  EXPECT_EQ(kills, 1);
  // Mission 1 was computed, killed before its record, then re-run once.
  EXPECT_EQ(stats.missions_run, campaign.num_missions);
  EXPECT_EQ(stats.missions_resumed, 1);  // mission 0's record survived
  ShardMergeStats merge_stats;
  const CampaignResult merged =
      merge_shards(campaign, dir, /*allow_partial=*/false, &merge_stats);
  EXPECT_EQ(merge_stats.duplicates, 0);
  EXPECT_TRUE(deterministic_equal(merged, run_campaign(campaign)));
}

TEST(ChaosShardWorker, TornWriteIsHealedOnResume) {
  const CampaignConfig campaign = small_campaign();
  const std::string dir = service_dir("chaos_torn");

  std::int64_t now = 0;
  ShardWorkerConfig worker;
  worker.campaign = campaign;
  worker.dir = dir;
  worker.num_leases = 2;
  worker.owner = "torn";
  worker.clock = [&now] { return now; };
  worker.sleep_ms = [&now](std::int64_t ms) { now += ms; };
  worker.chaos = parse_chaos_plan("torn-write@1");
  worker.chaos_kill = [] {};  // die in place, resume in the same process
  const ShardWorkerStats stats = run_shard_worker(worker);

  // The fragment was healed away; the mission re-ran and recorded whole.
  EXPECT_EQ(stats.missions_run, campaign.num_missions);
  ShardMergeStats merge_stats;
  const CampaignResult merged =
      merge_shards(campaign, dir, /*allow_partial=*/false, &merge_stats);
  EXPECT_EQ(merge_stats.records, campaign.num_missions);
  EXPECT_EQ(merge_stats.duplicates, 0);
  EXPECT_TRUE(deterministic_equal(merged, run_campaign(campaign)));
}

TEST(ChaosShardWorker, HangReleasesWhenTheWaitHookSaysSo) {
  const CampaignConfig campaign = small_campaign();
  const std::string dir = service_dir("chaos_hang_release");

  std::int64_t now = 0;
  int waits = 0;
  ShardWorkerConfig worker;
  worker.campaign = campaign;
  worker.dir = dir;
  worker.num_leases = 1;
  worker.owner = "hanger";
  worker.clock = [&now] { return now; };
  worker.sleep_ms = [&now](std::int64_t ms) { now += ms; };
  worker.chaos = parse_chaos_plan("hang@0");
  worker.chaos_hang_wait = [&waits](std::int64_t) { return ++waits >= 3; };
  const ShardWorkerStats stats = run_shard_worker(worker);

  EXPECT_EQ(waits, 3);  // hung for three bounded waits, then released
  EXPECT_EQ(stats.missions_run, campaign.num_missions);
  EXPECT_TRUE(deterministic_equal(merge_shards(campaign, dir),
                                  run_campaign(campaign)));
}

TEST(ChaosShardWorker, HungWorkerIsFencedOffAndRecoversTheLease) {
  const CampaignConfig campaign = small_campaign();
  const std::string dir = service_dir("chaos_hang_fence");

  // Real clock and a short TTL: the heartbeat thread must discover the
  // fence on its own renewal schedule while the mission loop hangs.
  ShardWorkerConfig worker;
  worker.campaign = campaign;
  worker.dir = dir;
  worker.num_leases = 1;
  worker.lease_ttl_ms = 150;
  worker.owner = "hung";
  worker.chaos = parse_chaos_plan("hang@0");
  worker.chaos_hang_wait = [](std::int64_t ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return false;  // never self-release: only the fence gets us out
  };

  ShardWorkerStats stats;
  std::thread runner([&] { stats = run_shard_worker(worker); });
  // Fence the hung worker the way a coordinator would.
  LeaseStore coordinator(dir, 150, "coordinator");
  while (!std::filesystem::exists(coordinator.claim_path(0))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  (void)coordinator.fence_claim(0);
  runner.join();

  // The worker abandoned the hang, re-claimed the lease (its chaos entry
  // already spent) and finished the campaign.
  EXPECT_GE(stats.leases_abandoned, 1);
  EXPECT_TRUE(all_leases_done(dir, 1));
  EXPECT_TRUE(deterministic_equal(merge_shards(campaign, dir),
                                  run_campaign(campaign)));
}

// ---------------------------------------------------------------------------
// Heartbeat failure handling (transient vs permanent renewal errors).

TEST(LeaseHeartbeatErrors, TransientRenewalFailuresAreRetriedNotFatal) {
  const std::string dir = service_dir("hb_transient");
  LeaseStore store(dir, /*ttl_ms=*/200, "flaky");
  ASSERT_TRUE(store.try_claim(0));
  std::atomic<int> failures{2};
  store.set_append_hook_for_test([&failures] {
    if (failures.fetch_sub(1) > 0) throw util::IoError("blip", EIO);
  });
  {
    LeaseHeartbeat heartbeat(store, 0);
    // Two transient failures fit comfortably inside the TTL; the heartbeat
    // must back off and recover, never fencing itself.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
    while (failures.load() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_LE(failures.load(), 0);
    EXPECT_FALSE(heartbeat.fenced());
  }
  EXPECT_TRUE(store.holds(0));  // a successful renewal landed after the blips
}

TEST(LeaseHeartbeatErrors, PermanentRenewalFailureFencesImmediately) {
  const std::string dir = service_dir("hb_permanent");
  LeaseStore store(dir, /*ttl_ms=*/150, "rofs");
  ASSERT_TRUE(store.try_claim(0));
  // A read-only filesystem never heals: the heartbeat must abandon at the
  // first renewal instead of spinning on retries.
  store.set_append_hook_for_test(
      [] { throw util::IoError("read-only", EROFS); });
  LeaseHeartbeat heartbeat(store, 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
  while (!heartbeat.fenced() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(heartbeat.fenced());
}

TEST(LeaseHeartbeatErrors, TransientFailuresPastTheTtlFence) {
  const std::string dir = service_dir("hb_lapsed");
  LeaseStore store(dir, /*ttl_ms=*/120, "unlucky");
  ASSERT_TRUE(store.try_claim(0));
  // Every renewal fails "transiently": once the claim has lapsed on disk a
  // reclaimer may own the range, so the heartbeat must fence rather than
  // keep retrying into a contested lease.
  store.set_append_hook_for_test([] { throw util::IoError("still down", EIO); });
  LeaseHeartbeat heartbeat(store, 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(3000);
  while (!heartbeat.fenced() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(heartbeat.fenced());
}

// ---------------------------------------------------------------------------
// Holes: machine-readable partial merges and resume.

TEST(HolesManifest, RoundTripsThroughJsonl) {
  HolesManifest manifest;
  manifest.config_hash = "0123456789abcdef";
  manifest.num_missions = 20;
  manifest.holes = {MissionHole{.begin = 3, .end = 7},
                    MissionHole{.begin = 12, .end = 13}};
  const HolesManifest parsed = holes_manifest_from_json(to_jsonl(manifest));
  EXPECT_EQ(parsed.schema_version, 1);
  EXPECT_EQ(parsed.config_hash, manifest.config_hash);
  EXPECT_EQ(parsed.num_missions, 20);
  ASSERT_EQ(parsed.holes.size(), 2u);
  EXPECT_EQ(parsed.holes[0].begin, 3);
  EXPECT_EQ(parsed.holes[0].end, 7);
  EXPECT_EQ(parsed.holes[1].begin, 12);
}

TEST(HolesManifest, MissingMissionRangesFindsMaximalRuns) {
  CampaignResult result;
  result.outcomes.resize(8);
  for (int i = 0; i < 8; ++i) result.outcomes[i].mission_index = i;
  for (const int i : {0, 3, 4, 7}) result.outcomes[i].completed = true;
  const auto holes = missing_mission_ranges(result);
  ASSERT_EQ(holes.size(), 2u);
  EXPECT_EQ(holes[0].begin, 1);
  EXPECT_EQ(holes[0].end, 3);
  EXPECT_EQ(holes[1].begin, 5);
  EXPECT_EQ(holes[1].end, 7);
  for (auto& outcome : result.outcomes) outcome.completed = true;
  EXPECT_TRUE(missing_mission_ranges(result).empty());
}

TEST(ResumeHoles, TurnsALostShardBackIntoLeasesAndCompletes) {
  const CampaignConfig campaign = small_campaign();
  const std::string dir = service_dir("resume_holes");

  std::int64_t now = 0;
  ShardWorkerConfig worker;
  worker.campaign = campaign;
  worker.dir = dir;
  worker.num_leases = 2;
  worker.owner = "first";
  worker.clock = [&now] { return now; };
  worker.sleep_ms = [&now](std::int64_t ms) { now += ms; };
  (void)run_shard_worker(worker);

  // Disaster: lease 1's shard stream is lost *after* its done marker.
  std::filesystem::remove(shard_telemetry_path(dir, 1));
  const CampaignResult partial =
      merge_shards(campaign, dir, /*allow_partial=*/true);
  const auto holes = missing_mission_ranges(partial);
  ASSERT_EQ(holes.size(), 1u);  // lease 1's range [3,6)

  ServiceManifest manifest;
  manifest.config_hash = campaign_config_hash(campaign);
  manifest.num_missions = campaign.num_missions;
  manifest.num_leases = 2;
  manifest.lease_ttl_ms = 1000;
  HolesManifest holes_manifest;
  holes_manifest.config_hash = manifest.config_hash;
  holes_manifest.num_missions = campaign.num_missions;
  holes_manifest.holes = holes;

  // The done-but-holey lease is retired and its hole re-leased...
  EXPECT_EQ(resume_holes(dir, manifest, holes_manifest), 1);
  // ...idempotently: the recovery lease already covers the hole exactly.
  EXPECT_EQ(resume_holes(dir, manifest, holes_manifest), 0);

  worker.owner = "second";
  const ShardWorkerStats stats = run_shard_worker(worker);
  EXPECT_EQ(stats.missions_run, 3);  // exactly the hole, nothing else
  EXPECT_TRUE(service_complete(dir, campaign.num_missions, 2));
  EXPECT_TRUE(deterministic_equal(merge_shards(campaign, dir),
                                  run_campaign(campaign)));
}

TEST(ResumeHoles, OrphanedHolesGetParentlessLeases) {
  const std::string dir = service_dir("resume_orphan");
  // Lease 0 = [0,3) was re-carved down to a sub covering only [2,3): the
  // records for [0,2) were in its shard file, which is now lost. No active
  // lease covers [0,2) — the parentless ledger form must.
  RecarveRecord record;
  record.parent = 0;
  record.subs = {LeaseRange{.lease_id = 2, .begin = 2, .end = 3}};
  append_jsonl_line(recarve_ledger_path(dir), to_jsonl(record));

  ServiceManifest manifest;
  manifest.config_hash = "cafe";
  manifest.num_missions = 6;
  manifest.num_leases = 2;
  HolesManifest holes;
  holes.config_hash = "cafe";
  holes.num_missions = 6;
  holes.holes = {MissionHole{.begin = 0, .end = 2}};

  EXPECT_EQ(resume_holes(dir, manifest, holes), 1);
  const LeaseTable table = load_lease_table(dir, 6, 2);
  ASSERT_EQ(table.active.size(), 3u);  // lease 1, sub 2, recovery lease 3
  EXPECT_EQ(table.active.back().lease_id, 3);
  EXPECT_EQ(table.active.back().begin, 0);
  EXPECT_EQ(table.active.back().end, 2);
}

TEST(ResumeHoles, RejectsMismatchedConfigHash) {
  const std::string dir = service_dir("resume_mismatch");
  ServiceManifest manifest;
  manifest.config_hash = "aaaa";
  manifest.num_missions = 6;
  manifest.num_leases = 2;
  HolesManifest holes;
  holes.config_hash = "bbbb";  // from a different campaign
  holes.num_missions = 6;
  holes.holes = {MissionHole{.begin = 0, .end = 1}};
  EXPECT_THROW((void)resume_holes(dir, manifest, holes), std::runtime_error);
}

TEST(ShardWorker, ThreeConcurrentWorkersMergeBitIdenticalQuadrotor) {
  CampaignConfig campaign = small_campaign(4);
  campaign.fuzzer.sim.vehicle = sim::VehicleType::kQuadrotor;
  campaign.fuzzer.mission_budget = 6;  // quadrotor steps cost more
  const std::string dir = service_dir("three_quadrotor");

  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      ShardWorkerConfig worker;
      worker.campaign = campaign;
      worker.dir = dir;
      worker.num_leases = 2;
      worker.lease_ttl_ms = 5000;
      worker.owner = "quad-" + std::to_string(i);
      (void)run_shard_worker(worker);
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_TRUE(all_leases_done(dir, 2));
  EXPECT_TRUE(deterministic_equal(merge_shards(campaign, dir),
                                  run_campaign(campaign)));
}

}  // namespace
}  // namespace swarmfuzz::fuzz
