#include "math/vec3.h"

#include <gtest/gtest.h>

#include <cmath>

namespace swarmfuzz::math {
namespace {

TEST(Vec3, ArithmeticOperators) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(b / 2.0, Vec3(2, 2.5, 3));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += Vec3{1, 2, 3};
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= Vec3{1, 1, 1};
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_DOUBLE_EQ(Vec3(1, 2, 3).dot(Vec3(4, 5, 6)), 32.0);
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(x), -z);
}

TEST(Vec3, Norms) {
  const Vec3 v{3, 4, 12};
  EXPECT_DOUBLE_EQ(v.norm_sq(), 169.0);
  EXPECT_DOUBLE_EQ(v.norm(), 13.0);
  EXPECT_DOUBLE_EQ(v.norm_xy(), 5.0);
  EXPECT_EQ(v.horizontal(), Vec3(3, 4, 0));
}

TEST(Vec3, NormalizedUnitLength) {
  const Vec3 v{3, -4, 0};
  const Vec3 n = v.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.y, -0.8, 1e-12);
}

TEST(Vec3, NormalizedZeroIsZero) {
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});
}

TEST(Vec3, ClampedLimitsNorm) {
  const Vec3 v{3, 4, 0};
  EXPECT_EQ(v.clamped(10.0), v);  // under the limit: unchanged
  const Vec3 c = v.clamped(1.0);
  EXPECT_NEAR(c.norm(), 1.0, 1e-12);
  // Direction preserved.
  EXPECT_NEAR(c.x / c.y, v.x / v.y, 1e-12);
}

TEST(Vec3, DistanceHelpers) {
  EXPECT_DOUBLE_EQ(distance(Vec3(0, 0, 0), Vec3(3, 4, 0)), 5.0);
  EXPECT_DOUBLE_EQ(distance_xy(Vec3(0, 0, 10), Vec3(3, 4, -5)), 5.0);
}

TEST(Vec3, Lerp) {
  const Vec3 a{0, 0, 0}, b{10, 20, 30};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), Vec3(5, 10, 15));
  // Not clamped: extrapolation allowed.
  EXPECT_EQ(lerp(a, b, 2.0), Vec3(20, 40, 60));
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3{1, 2.5, -3};
  EXPECT_EQ(os.str(), "(1, 2.5, -3)");
}

}  // namespace
}  // namespace swarmfuzz::math
