#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace swarmfuzz::sim {
namespace {

// Drives every drone straight toward the destination at fixed speed.
class StraightLineControl final : public ControlSystem {
 public:
  explicit StraightLineControl(double speed = 2.0) : speed_(speed) {}

  void reset(const MissionSpec&, std::uint64_t) override { ++resets; }

  void compute(const WorldSnapshot& snapshot, const MissionSpec& mission,
               std::span<Vec3> desired) override {
    for (size_t i = 0; i < snapshot.gps_position.size(); ++i) {
      desired[i] = (mission.destination - snapshot.gps_position[i])
                       .normalized() * speed_;
    }
    last_snapshot = snapshot;
  }

  int resets = 0;
  WorldSnapshot last_snapshot;

 private:
  double speed_;
};

// Constant-offset spoofer for one drone.
class FixedSpoofer final : public GpsOffsetProvider {
 public:
  FixedSpoofer(int target, Vec3 offset) : target_(target), offset_(offset) {}
  Vec3 offset(int drone_id, double) const override {
    return drone_id == target_ ? offset_ : Vec3{};
  }

 private:
  int target_;
  Vec3 offset_;
};

MissionSpec two_drone_mission() {
  MissionSpec mission;
  mission.initial_positions = {{0, 0, 10}, {0, 10, 10}};
  mission.destination = {60, 5, 10};
  mission.max_time = 120.0;
  mission.arrival_radius = 5.0;
  mission.seed = 17;
  return mission;
}

TEST(Simulator, RejectsInvalidConfig) {
  SimulationConfig config;
  config.dt = 0.0;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);
}

TEST(Simulator, RejectsEmptyMission) {
  Simulator simulator;
  StraightLineControl control;
  EXPECT_THROW((void)simulator.run(MissionSpec{}, control), std::invalid_argument);
}

TEST(Simulator, StraightMissionReachesDestination) {
  Simulator simulator;
  StraightLineControl control;
  const RunResult result = simulator.run(two_drone_mission(), control);
  EXPECT_TRUE(result.reached_destination);
  EXPECT_FALSE(result.collided);
  EXPECT_GT(result.end_time, 10.0);
  EXPECT_LT(result.end_time, 60.0);
  EXPECT_EQ(control.resets, 1);
}

TEST(Simulator, DeterministicAcrossRuns) {
  Simulator simulator;
  StraightLineControl c1, c2;
  const MissionSpec mission = two_drone_mission();
  const RunResult a = simulator.run(mission, c1);
  const RunResult b = simulator.run(mission, c2);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.recorder.num_samples(), b.recorder.num_samples());
  const auto sa = a.recorder.sample(a.recorder.num_samples() - 1);
  const auto sb = b.recorder.sample(b.recorder.num_samples() - 1);
  EXPECT_EQ(sa[0].position, sb[0].position);
}

TEST(Simulator, StopsAtMaxTimeWithoutArrival) {
  MissionSpec mission = two_drone_mission();
  mission.destination = {10000, 0, 10};
  mission.max_time = 5.0;
  Simulator simulator;
  StraightLineControl control;
  const RunResult result = simulator.run(mission, control);
  EXPECT_FALSE(result.reached_destination);
  EXPECT_NEAR(result.end_time, 5.0, 0.1);
}

TEST(Simulator, DetectsObstacleCollisionAndStops) {
  MissionSpec mission = two_drone_mission();
  // Obstacle dead ahead of drone 0's straight path.
  mission.initial_positions = {{0, 5, 10}, {0, 50, 10}};
  mission.obstacles = ObstacleField({CylinderObstacle{{30, 5, 0}, 3.0}});
  Simulator simulator;
  StraightLineControl control;
  const RunResult result = simulator.run(mission, control);
  ASSERT_TRUE(result.collided);
  ASSERT_TRUE(result.first_collision.has_value());
  EXPECT_EQ(result.first_collision->kind, CollisionKind::kDroneObstacle);
  EXPECT_EQ(result.first_collision->drone, 0);
  EXPECT_LE(result.vdo(0), mission.drone_radius + 1e-6);
}

TEST(Simulator, StopOnCollisionCanBeDisabled) {
  MissionSpec mission = two_drone_mission();
  mission.initial_positions = {{0, 5, 10}, {0, 50, 10}};
  mission.obstacles = ObstacleField({CylinderObstacle{{30, 5, 0}, 3.0}});
  SimulationConfig config;
  config.stop_on_collision = false;
  Simulator simulator(config);
  StraightLineControl control;
  const RunResult result = simulator.run(mission, control);
  EXPECT_TRUE(result.collided);
  // Mission keeps going after the contact (straight-line control flies
  // through), so the run lasts longer than the collision time.
  EXPECT_GT(result.end_time, result.first_collision->time + 1.0);
}

TEST(Simulator, SpooferShiftsObservedGps) {
  Simulator simulator;
  StraightLineControl control;
  const FixedSpoofer spoofer(0, {0, 7, 0});
  MissionSpec mission = two_drone_mission();
  mission.max_time = 0.5;  // a few ticks are enough
  (void)simulator.run(mission, control, &spoofer);
  ASSERT_EQ(control.last_snapshot.size(), 2);
  // Drone 0 starts at y=0 and moves little in 0.5 s; the observed y must
  // carry the 7 m offset. Drone 1 is unspoofed.
  EXPECT_NEAR(control.last_snapshot.gps_position[0].y, 7.0, 1.0);
  EXPECT_NEAR(control.last_snapshot.gps_position[1].y, 10.0, 1.0);
}

TEST(Simulator, RecorderCoversWholeRun) {
  Simulator simulator;
  StraightLineControl control;
  const RunResult result = simulator.run(two_drone_mission(), control);
  EXPECT_GT(result.recorder.num_samples(), 10);
  EXPECT_NEAR(result.recorder.duration(), result.end_time, 1e-9);
  EXPECT_GE(result.t_clo(), 0.0);
  EXPECT_LE(result.t_clo(), result.end_time);
}

TEST(Simulator, GpsNoisePreservesDeterminismPerSeed) {
  SimulationConfig config;
  config.gps.noise_stddev = 0.5;
  Simulator simulator(config);
  StraightLineControl c1, c2;
  const MissionSpec mission = two_drone_mission();
  const RunResult a = simulator.run(mission, c1);
  const RunResult b = simulator.run(mission, c2);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
}

TEST(Simulator, QuadrotorVehicleCompletesMission) {
  SimulationConfig config;
  config.vehicle = VehicleType::kQuadrotor;
  config.dt = 0.02;
  Simulator simulator(config);
  StraightLineControl control;
  const RunResult result = simulator.run(two_drone_mission(), control);
  EXPECT_TRUE(result.reached_destination);
  EXPECT_FALSE(result.collided);
}

}  // namespace
}  // namespace swarmfuzz::sim
