#include "util/csv.h"

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <sstream>

namespace swarmfuzz::util {
namespace {

TEST(Csv, WritesSimpleRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b", "c"});
  writer.write_row({"1", "2", "3"});
  EXPECT_EQ(out.str(), "a,b,c\n1,2,3\n");
  EXPECT_EQ(writer.rows_written(), 2);
}

TEST(Csv, EscapesSeparatorsQuotesAndNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain", ','), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b", ','), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\"", ','), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak", ','), "\"line\nbreak\"");
}

TEST(Csv, CustomSeparator) {
  std::ostringstream out;
  CsvWriter writer(out, ';');
  writer.write_row({"a;b", "c"});
  EXPECT_EQ(out.str(), "\"a;b\";c\n");
}

TEST(Csv, NumericRowsUseCompactFormatting) {
  std::ostringstream out;
  CsvWriter writer(out);
  const std::array<double, 3> values{1.5, -2.0, 0.125};
  writer.write_numeric_row(values);
  EXPECT_EQ(out.str(), "1.5,-2,0.125\n");
}

TEST(Csv, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "swarmfuzz_csv_test.csv";
  {
    CsvWriter writer(path);
    writer.write_row({"x", "y"});
    writer.write_row({"1", "2"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter(std::filesystem::path{"/nonexistent-dir/file.csv"}),
               std::runtime_error);
}

}  // namespace
}  // namespace swarmfuzz::util
