#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace swarmfuzz::util {
namespace {

TEST(Crc32, MatchesKnownVectors) {
  // Standard CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) check values.
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const std::string data = "{\"v\":1,\"index\":7,\"seed\":\"123\"}";
  std::uint32_t state = crc32_init();
  for (const char c : data) {
    state = crc32_update(state, std::string_view{&c, 1});
  }
  EXPECT_EQ(crc32_final(state), crc32(data));

  // Arbitrary split points too, not just per-byte.
  state = crc32_update(crc32_init(), data.substr(0, 5));
  state = crc32_update(state, data.substr(5));
  EXPECT_EQ(crc32_final(state), crc32(data));
}

TEST(Crc32, DetectsSingleByteChange) {
  const std::string a = "telemetry record payload";
  std::string b = a;
  b[3] ^= 0x01;
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Crc32, EmbeddedNulBytesAreHashed) {
  const std::string with_nul{"ab\0cd", 5};
  EXPECT_NE(crc32(with_nul), crc32("abcd"));
}

}  // namespace
}  // namespace swarmfuzz::util
