#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace swarmfuzz::util {
namespace {

TEST(Json, EmptyObjectAndArray) {
  JsonWriter obj;
  obj.begin_object();
  obj.end_object();
  EXPECT_EQ(obj.str(), "{}");

  JsonWriter arr;
  arr.begin_array();
  arr.end_array();
  EXPECT_EQ(arr.str(), "[]");
}

TEST(Json, ObjectWithMixedValues) {
  JsonWriter json;
  json.begin_object();
  json.key("name");
  json.value("swarmfuzz");
  json.key("count");
  json.value(3);
  json.key("rate");
  json.value(0.5);
  json.key("ok");
  json.value(true);
  json.key("missing");
  json.null();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"swarmfuzz","count":3,"rate":0.5,"ok":true,"missing":null})");
}

TEST(Json, ArrayCommas) {
  JsonWriter json;
  json.begin_array();
  json.value(1);
  json.value(2);
  json.value(3);
  json.end_array();
  EXPECT_EQ(json.str(), "[1,2,3]");
}

TEST(Json, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("list");
  json.begin_array();
  json.begin_object();
  json.key("a");
  json.value(1);
  json.end_object();
  json.begin_object();
  json.key("b");
  json.value(2);
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"list":[{"a":1},{"b":2}]})");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string{"\x01"}), "\\u0001");
}

TEST(Json, NumbersFormatCompactly) {
  JsonWriter json;
  json.begin_array();
  json.value(1.0);
  json.value(-2.5);
  json.value(1e9);
  json.end_array();
  EXPECT_EQ(json.str(), "[1,-2.5,1000000000]");
}

TEST(Json, ValueInObjectWithoutKeyThrows) {
  JsonWriter json;
  json.begin_object();
  EXPECT_THROW(json.value(1), std::logic_error);
}

TEST(Json, KeyOutsideObjectThrows) {
  JsonWriter json;
  json.begin_array();
  EXPECT_THROW(json.key("x"), std::logic_error);
}

TEST(Json, UnbalancedEndsThrow) {
  JsonWriter json;
  json.begin_object();
  EXPECT_THROW(json.end_array(), std::logic_error);
  JsonWriter json2;
  json2.begin_array();
  EXPECT_THROW(json2.end_object(), std::logic_error);
}

TEST(Json, UnfinishedDocumentThrowsOnStr) {
  JsonWriter json;
  json.begin_object();
  EXPECT_THROW((void)json.str(), std::logic_error);
  JsonWriter json2;
  json2.begin_object();
  json2.key("dangling");
  EXPECT_THROW((void)json2.str(), std::logic_error);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_DOUBLE_EQ(parse_json("-2.5e3").as_double(), -2500.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_json("  7 ").as_int(), 7);  // surrounding whitespace ok
}

TEST(JsonParse, ObjectsAndArrays) {
  const JsonValue root = parse_json(
      R"({"name":"swarmfuzz","count":3,"rate":0.5,"ok":true,"missing":null,)"
      R"("list":[1,2,3],"nested":{"a":[{"b":2}]}})");
  EXPECT_EQ(root.size(), 7u);
  EXPECT_EQ(root.at("name").as_string(), "swarmfuzz");
  EXPECT_EQ(root.at("count").as_int(), 3);
  EXPECT_DOUBLE_EQ(root.at("rate").as_double(), 0.5);
  EXPECT_TRUE(root.at("ok").as_bool());
  EXPECT_TRUE(root.at("missing").is_null());
  ASSERT_EQ(root.at("list").size(), 3u);
  EXPECT_EQ(root.at("list").at(2).as_int(), 3);
  EXPECT_EQ(root.at("nested").at("a").at(0).at("b").as_int(), 2);
  EXPECT_TRUE(root.has("list"));
  EXPECT_FALSE(root.has("absent"));
  EXPECT_EQ(root.find("absent"), nullptr);
  EXPECT_THROW((void)root.at("absent"), std::invalid_argument);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("say \"hi\"")").as_string(), "say \"hi\"");
  EXPECT_EQ(parse_json(R"("a\\b\/c")").as_string(), "a\\b/c");
  EXPECT_EQ(parse_json(R"("line\nbreak\ttab")").as_string(), "line\nbreak\ttab");
  EXPECT_EQ(parse_json(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("\u00e9")").as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(parse_json(R"("\u20ac")").as_string(), "\xe2\x82\xac");  // €
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");  // surrogate pair (emoji)
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("weird \"key\"\n");
  writer.value("control \x01 char");
  writer.key("values");
  writer.begin_array();
  writer.value(0.1);
  writer.value(-7);
  writer.value(false);
  writer.null();
  writer.end_array();
  writer.end_object();

  const JsonValue root = parse_json(writer.str());
  EXPECT_EQ(root.at("weird \"key\"\n").as_string(), "control \x01 char");
  EXPECT_DOUBLE_EQ(root.at("values").at(0).as_double(), 0.1);
  EXPECT_EQ(root.at("values").at(1).as_int(), -7);
  EXPECT_FALSE(root.at("values").at(2).as_bool());
  EXPECT_TRUE(root.at("values").at(3).is_null());
}

TEST(JsonParse, ExactDoubleRoundTrip) {
  // %.10g (plain value()) loses bits on these; value_exact must not.
  for (const double original : {1.0 / 3.0, 0.1 + 0.2, 98.30000000000001,
                                2.2250738585072014e-305, -0.45000000000000007}) {
    JsonWriter writer;
    writer.value_exact(original);
    const double parsed = parse_json(writer.str()).as_double();
    EXPECT_EQ(parsed, original);
  }
}

TEST(JsonParse, NonFiniteDoublesRoundTripAsNull) {
  // JSON has no spelling for nan/inf: a bare `nan` token would make the
  // whole document unparseable. Both writers must emit null instead, and
  // as_double() must map null back to NaN so undefined aggregates (averages
  // over empty sets) survive a serialize/parse cycle as "undefined".
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {nan, inf, -inf}) {
    JsonWriter plain;
    plain.value(bad);
    EXPECT_EQ(plain.str(), "null");
    JsonWriter exact;
    exact.value_exact(bad);
    EXPECT_EQ(exact.str(), "null");
    const JsonValue parsed = parse_json(exact.str());
    EXPECT_TRUE(parsed.is_null());
    EXPECT_TRUE(std::isnan(parsed.as_double()));
  }
}

TEST(JsonParse, Uint64ViaNumberText) {
  const JsonValue value = parse_json("18446744073709551615");
  EXPECT_EQ(value.number_text(), "18446744073709551615");
  EXPECT_EQ(value.as_uint64(), 18446744073709551615ull);
  EXPECT_THROW((void)parse_json("1.5").as_uint64(), std::invalid_argument);
}

TEST(JsonParse, DuplicateKeysKeepFirst) {
  EXPECT_EQ(parse_json(R"({"k":1,"k":2})").at("k").as_int(), 1);
}

TEST(JsonParse, MalformedInputThrows) {
  for (const char* bad :
       {"", "   ", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nulll", "01",
        "1.", "1e", "-", "\"unterminated", "\"bad \\q escape\"", "[1] trailing",
        "{\"a\":1,}", "\"\\ud800\"", "{'a':1}"}) {
    EXPECT_THROW((void)parse_json(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonParse, RejectsRawControlCharactersInStrings) {
  EXPECT_THROW((void)parse_json("\"a\nb\""), std::invalid_argument);
}

}  // namespace
}  // namespace swarmfuzz::util
