#include "util/json.h"

#include <gtest/gtest.h>

namespace swarmfuzz::util {
namespace {

TEST(Json, EmptyObjectAndArray) {
  JsonWriter obj;
  obj.begin_object();
  obj.end_object();
  EXPECT_EQ(obj.str(), "{}");

  JsonWriter arr;
  arr.begin_array();
  arr.end_array();
  EXPECT_EQ(arr.str(), "[]");
}

TEST(Json, ObjectWithMixedValues) {
  JsonWriter json;
  json.begin_object();
  json.key("name");
  json.value("swarmfuzz");
  json.key("count");
  json.value(3);
  json.key("rate");
  json.value(0.5);
  json.key("ok");
  json.value(true);
  json.key("missing");
  json.null();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"swarmfuzz","count":3,"rate":0.5,"ok":true,"missing":null})");
}

TEST(Json, ArrayCommas) {
  JsonWriter json;
  json.begin_array();
  json.value(1);
  json.value(2);
  json.value(3);
  json.end_array();
  EXPECT_EQ(json.str(), "[1,2,3]");
}

TEST(Json, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("list");
  json.begin_array();
  json.begin_object();
  json.key("a");
  json.value(1);
  json.end_object();
  json.begin_object();
  json.key("b");
  json.value(2);
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"list":[{"a":1},{"b":2}]})");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string{"\x01"}), "\\u0001");
}

TEST(Json, NumbersFormatCompactly) {
  JsonWriter json;
  json.begin_array();
  json.value(1.0);
  json.value(-2.5);
  json.value(1e9);
  json.end_array();
  EXPECT_EQ(json.str(), "[1,-2.5,1000000000]");
}

TEST(Json, ValueInObjectWithoutKeyThrows) {
  JsonWriter json;
  json.begin_object();
  EXPECT_THROW(json.value(1), std::logic_error);
}

TEST(Json, KeyOutsideObjectThrows) {
  JsonWriter json;
  json.begin_array();
  EXPECT_THROW(json.key("x"), std::logic_error);
}

TEST(Json, UnbalancedEndsThrow) {
  JsonWriter json;
  json.begin_object();
  EXPECT_THROW(json.end_array(), std::logic_error);
  JsonWriter json2;
  json2.begin_array();
  EXPECT_THROW(json2.end_object(), std::logic_error);
}

TEST(Json, UnfinishedDocumentThrowsOnStr) {
  JsonWriter json;
  json.begin_object();
  EXPECT_THROW((void)json.str(), std::logic_error);
  JsonWriter json2;
  json2.begin_object();
  json2.key("dangling");
  EXPECT_THROW((void)json2.str(), std::logic_error);
}

}  // namespace
}  // namespace swarmfuzz::util
