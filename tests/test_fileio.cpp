#include "util/fileio.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace swarmfuzz::util {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path{::testing::TempDir()} /
          ("swarmfuzz_fileio_" + name))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(WriteFileAtomic, WritesContentAndLeavesNoTempFile) {
  const std::string path = temp_path("basic.txt");
  std::remove(path.c_str());
  write_file_atomic(path, "campaign summary\n");
  EXPECT_EQ(slurp(path), "campaign summary\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(WriteFileAtomic, ReplacesExistingContentCompletely) {
  const std::string path = temp_path("replace.txt");
  write_file_atomic(path, std::string(4096, 'x'));
  write_file_atomic(path, "short");
  // Replacement, not truncate-in-place-then-write: no stale tail possible.
  EXPECT_EQ(slurp(path), "short");
  std::remove(path.c_str());
}

TEST(WriteFileAtomic, EmptyContentYieldsEmptyFile) {
  const std::string path = temp_path("empty.txt");
  write_file_atomic(path, "");
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(std::filesystem::file_size(path), 0u);
  std::remove(path.c_str());
}

TEST(WriteFileAtomic, ThrowsWhenDirectoryDoesNotExist) {
  const std::string path = temp_path("no_such_dir") + "/out.txt";
  EXPECT_THROW(write_file_atomic(path, "x"), std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(WriteFileAtomic, BinaryContentRoundTrips) {
  const std::string path = temp_path("binary.bin");
  std::string data{"a\0b\nc\r\nd", 8};
  data.push_back('\0');
  write_file_atomic(path, data);
  EXPECT_EQ(slurp(path), data);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swarmfuzz::util
