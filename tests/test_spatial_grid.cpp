// Property tests for the uniform spatial hash grid (DESIGN.md §14).
//
// The grid's entire correctness contract is "conservative superset, ascending
// index order": every caller re-applies its exact accept test, so as long as
// gather() never *misses* an in-range drone and never reorders candidates,
// the accelerated paths are bit-identical to the brute-force scans they
// replace. These tests hammer that contract with randomized swarms across
// spreads, radii and cell sizes, plus the degenerate geometries (everything
// in one cell, coincident points, radius at a cell edge) where an off-by-one
// in cell coverage would hide. The metrics and collision golden tests then
// pin the end-to-end claim: grid on and grid off produce bit-identical
// results through the public APIs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "math/rng.h"
#include "math/geometry.h"
#include "sim/collision.h"
#include "sim/types.h"
#include "swarm/metrics.h"
#include "swarm/spatial_grid.h"

namespace {

using namespace swarmfuzz;

// RAII save/restore for the process-wide grid policy.
class GridPolicyScope {
 public:
  GridPolicyScope(bool enabled, int min_drones)
      : saved_(swarm::spatial_grid_policy()) {
    swarm::spatial_grid_policy() = {enabled, min_drones};
  }
  ~GridPolicyScope() { swarm::spatial_grid_policy() = saved_; }

 private:
  swarm::SpatialGridPolicy saved_;
};

std::vector<math::Vec3> random_positions(math::Rng& rng, int n, double spread) {
  std::vector<math::Vec3> pos;
  pos.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pos.push_back({rng.uniform(-spread, spread), rng.uniform(-spread, spread),
                   rng.uniform(5.0, 15.0)});
  }
  return pos;
}

// Exact in-range set by the same XY metric the grid approximates.
std::vector<int> brute_in_range(std::span<const math::Vec3> pos,
                                const math::Vec3& center, double radius) {
  std::vector<int> out;
  for (int j = 0; j < static_cast<int>(pos.size()); ++j) {
    if (math::distance_xy(center, pos[static_cast<size_t>(j)]) <= radius) {
      out.push_back(j);
    }
  }
  return out;
}

void expect_sorted_unique(const std::vector<int>& v) {
  for (size_t k = 1; k < v.size(); ++k) {
    ASSERT_LT(v[k - 1], v[k]) << "candidates not in strictly ascending order";
  }
}

void expect_superset(const std::vector<int>& superset,
                     const std::vector<int>& subset) {
  for (const int j : subset) {
    ASSERT_TRUE(std::binary_search(superset.begin(), superset.end(), j))
        << "grid missed in-range index " << j;
  }
}

TEST(SpatialGrid, GatherIsSupersetAcrossRandomGeometries) {
  math::Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = rng.uniform_int(1, 60);
    const double spread = rng.uniform(0.5, 200.0);
    const double radius = rng.uniform(0.1, 2.0 * spread);
    const double cell = rng.uniform(0.05, 3.0 * radius + 0.1);
    const auto pos = random_positions(rng, n, spread);

    swarm::SpatialGrid grid;
    grid.build(std::span<const math::Vec3>(pos), cell);
    ASSERT_TRUE(grid.valid());
    ASSERT_EQ(grid.size(), n);

    std::vector<int> cand;
    for (int i = 0; i < n; ++i) {
      cand.clear();
      grid.gather(pos[static_cast<size_t>(i)], radius, cand);
      expect_sorted_unique(cand);
      expect_superset(cand, brute_in_range(pos, pos[static_cast<size_t>(i)], radius));
    }
    // Off-drone query centers, including far outside the indexed box.
    for (int q = 0; q < 8; ++q) {
      const math::Vec3 center{rng.uniform(-3.0 * spread, 3.0 * spread),
                              rng.uniform(-3.0 * spread, 3.0 * spread), 10.0};
      cand.clear();
      grid.gather(center, radius, cand);
      expect_sorted_unique(cand);
      expect_superset(cand, brute_in_range(pos, center, radius));
    }
  }
}

TEST(SpatialGrid, GatherNearestCoversTheKNearest) {
  math::Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = rng.uniform_int(1, 50);
    const double spread = rng.uniform(0.5, 150.0);
    const double cell = rng.uniform(0.05, 40.0);
    const int k = rng.uniform_int(1, 8);
    const double min_dist = rng.bernoulli(0.5) ? 0.0 : 1e-9;
    const auto pos = random_positions(rng, n, spread);

    swarm::SpatialGrid grid;
    grid.build(std::span<const math::Vec3>(pos), cell);
    ASSERT_TRUE(grid.valid());

    std::vector<int> cand;
    for (int i = 0; i < n; ++i) {
      cand.clear();
      grid.gather_nearest(pos[static_cast<size_t>(i)], k, min_dist, cand);
      expect_sorted_unique(cand);
      if (static_cast<int>(cand.size()) >= n) continue;  // whole grid: trivially safe

      // k-th smallest qualifying XY distance, brute force.
      std::vector<double> qualifying;
      for (int j = 0; j < n; ++j) {
        const double d =
            math::distance_xy(pos[static_cast<size_t>(i)], pos[static_cast<size_t>(j)]);
        if (d >= min_dist) qualifying.push_back(d);
      }
      std::sort(qualifying.begin(), qualifying.end());
      if (static_cast<int>(qualifying.size()) < k) {
        // Fewer than k qualifying drones exist: the grid must have returned
        // everything, contradicting the size check above.
        FAIL() << "gather_nearest returned a strict subset with < k qualifying";
      }
      const double dk = qualifying[static_cast<size_t>(k - 1)];
      // Every index at distance <= dk must be present.
      expect_superset(cand, brute_in_range(pos, pos[static_cast<size_t>(i)], dk));
    }
  }
}

TEST(SpatialGrid, DegenerateGeometries) {
  swarm::SpatialGrid grid;
  std::vector<int> cand;

  // All drones inside a single cell.
  {
    std::vector<math::Vec3> pos = {{0.1, 0.1, 10}, {0.2, 0.15, 10}, {0.05, 0.3, 10}};
    grid.build(std::span<const math::Vec3>(pos), 100.0);
    ASSERT_TRUE(grid.valid());
    cand.clear();
    grid.gather(pos[0], 1.0, cand);
    EXPECT_EQ(cand, (std::vector<int>{0, 1, 2}));
  }

  // Fully coincident positions: every query must return all of them; the
  // nearest query with a coincidence threshold must still return everything
  // it can rather than spin.
  {
    std::vector<math::Vec3> pos(5, math::Vec3{3.0, -4.0, 10.0});
    grid.build(std::span<const math::Vec3>(pos), 1.0);
    ASSERT_TRUE(grid.valid());
    cand.clear();
    grid.gather(pos[0], 0.0, cand);
    EXPECT_EQ(cand, (std::vector<int>{0, 1, 2, 3, 4}));
    cand.clear();
    grid.gather_nearest(pos[0], 2, 1e-9, cand);
    EXPECT_EQ(cand, (std::vector<int>{0, 1, 2, 3, 4}));
  }

  // Radius exactly at a cell edge: points sitting on the boundary of the
  // covered square must not be lost to floor() rounding.
  {
    std::vector<math::Vec3> pos;
    for (int i = 0; i <= 10; ++i) {
      pos.push_back({static_cast<double>(i), 0.0, 10.0});  // exactly on cell edges
    }
    grid.build(std::span<const math::Vec3>(pos), 1.0);
    ASSERT_TRUE(grid.valid());
    for (int i = 0; i <= 10; ++i) {
      for (const double radius : {1.0, 2.0, 3.0}) {
        cand.clear();
        grid.gather(pos[static_cast<size_t>(i)], radius, cand);
        expect_sorted_unique(cand);
        expect_superset(cand,
                        brute_in_range(pos, pos[static_cast<size_t>(i)], radius));
      }
    }
  }

  // Empty input: nothing to index, grid reports invalid and callers fall
  // back to the (trivially empty) brute-force scan.
  {
    grid.build(std::span<const math::Vec3>{}, 1.0);
    EXPECT_FALSE(grid.valid());
    EXPECT_EQ(grid.size(), 0);
  }

  // A non-finite coordinate invalidates the grid (callers fall back).
  {
    std::vector<math::Vec3> pos = {{0, 0, 10},
                                   {std::numeric_limits<double>::quiet_NaN(), 0, 10}};
    grid.build(std::span<const math::Vec3>(pos), 1.0);
    EXPECT_FALSE(grid.valid());
  }
}

TEST(SpatialGrid, RebuildIsDeterministic) {
  math::Rng rng(99);
  const auto pos = random_positions(rng, 40, 80.0);
  swarm::SpatialGrid a;
  swarm::SpatialGrid b;
  a.build(std::span<const math::Vec3>(pos), 7.5);
  b.build(std::span<const math::Vec3>(pos), 7.5);
  std::vector<int> ca, cb;
  for (int i = 0; i < 40; ++i) {
    ca.clear();
    cb.clear();
    a.gather(pos[static_cast<size_t>(i)], 20.0, ca);
    b.gather(pos[static_cast<size_t>(i)], 20.0, cb);
    EXPECT_EQ(ca, cb);
  }
}

std::vector<sim::DroneState> random_states(math::Rng& rng, int n, double spread) {
  std::vector<sim::DroneState> states;
  states.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    states.push_back(sim::DroneState{
        .position = {rng.uniform(-spread, spread), rng.uniform(-spread, spread),
                     rng.uniform(8.0, 12.0)},
        .velocity = {rng.uniform(-3, 3), rng.uniform(-3, 3), 0.0},
    });
  }
  return states;
}

TEST(SpatialGrid, FlockMetricsBitIdenticalGridOnOff) {
  math::Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.uniform_int(2, 120);
    const auto states = random_states(rng, n, rng.uniform(1.0, 300.0));

    swarm::FlockMetrics with_grid;
    swarm::FlockMetrics without;
    {
      GridPolicyScope scope(true, 2);
      with_grid = swarm::flock_metrics(states);
    }
    {
      GridPolicyScope scope(false, 2);
      without = swarm::flock_metrics(states);
    }
    EXPECT_EQ(with_grid.min_separation, without.min_separation) << "trial " << trial;
    EXPECT_EQ(with_grid.order, without.order);
    EXPECT_EQ(with_grid.cohesion_radius, without.cohesion_radius);
    EXPECT_EQ(with_grid.mean_speed, without.mean_speed);
  }
}

TEST(SpatialGrid, CollisionCheckBitIdenticalGridOnOff) {
  math::Rng rng(31337);
  const sim::ObstacleField no_obstacles;
  const sim::CollisionMonitor monitor(0.5);
  int events_seen = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const int n = rng.uniform_int(2, 100);
    // Small spreads force genuine collisions; large spreads exercise the
    // empty-result path.
    auto states = random_states(rng, n, rng.uniform(1.0, 60.0));

    std::optional<sim::CollisionEvent> with_grid;
    std::optional<sim::CollisionEvent> without;
    {
      GridPolicyScope scope(true, 2);
      with_grid = monitor.check(states, {}, no_obstacles, 1.5);
    }
    {
      GridPolicyScope scope(false, 2);
      without = monitor.check(states, {}, no_obstacles, 1.5);
    }
    ASSERT_EQ(with_grid.has_value(), without.has_value()) << "trial " << trial;
    if (with_grid) {
      ++events_seen;
      EXPECT_EQ(with_grid->kind, without->kind);
      EXPECT_EQ(with_grid->time, without->time);
      EXPECT_EQ(with_grid->drone, without->drone);
      EXPECT_EQ(with_grid->other, without->other);
    }
  }
  // The trial mix must actually produce collision events, or the equality
  // checks above prove nothing.
  EXPECT_GT(events_seen, 0);
}

}  // namespace
