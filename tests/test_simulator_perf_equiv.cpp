// Golden determinism for the hot-path optimizations (DESIGN.md §9).
//
// The optimized pipeline — NeighborView-based communication filtering, the
// symmetric batch controller under trivial communication, the guarded sqrt
// skips and the squared-distance recorder/collision pruning — claims to be
// *bit-identical* to the straightforward pipeline it replaced. These tests
// hold it to that: a reference ControlSystem reproduces the old
// materialize-a-snapshot-per-drone flow through the retained public APIs,
// and full missions run under both must agree on every recorded trajectory
// sample, collision event and outcome, across vehicle models and with and
// without packet loss (packet loss doubles as an RNG-stream-alignment
// check: filter() and filter_into() must consume draws identically).
//
// A counting global allocator additionally pins the zero-allocation claim:
// after warm-up, the per-tick control computation performs no heap
// allocation on either the batch or the filtered path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "sim/simulator.h"
#include "sim/tick_pool.h"
#include "swarm/comm.h"
#include "swarm/flocking_system.h"
#include "swarm/olfati_saber.h"
#include "swarm/spatial_grid.h"
#include "swarm/vasarhelyi.h"

namespace {

std::atomic<std::uint64_t> g_allocation_count{0};

}  // namespace

// Replacements for the global allocation functions; counting them is the
// only way to observe allocations made inside library code.
void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace swarmfuzz;

// The pre-optimization control flow, reproduced through the retained public
// APIs: per drone, materialize the filtered snapshot (self first) and
// evaluate the controller through the snapshot adapter.
class ReferenceControlSystem final : public sim::ControlSystem {
 public:
  ReferenceControlSystem(std::shared_ptr<const swarm::SwarmController> controller,
                         const swarm::CommConfig& comm)
      : controller_(std::move(controller)), comm_(comm) {}

  void reset(const sim::MissionSpec& /*mission*/, std::uint64_t seed) override {
    comm_.reset(seed);
  }

  void compute(const sim::WorldSnapshot& snapshot, const sim::MissionSpec& mission,
               std::span<sim::Vec3> desired) override {
    for (int i = 0; i < snapshot.size(); ++i) {
      const sim::WorldSnapshot perceived =
          comm_.filter(snapshot, snapshot.id[static_cast<size_t>(i)]);
      desired[i] = controller_->desired_velocity(0, perceived, mission);
    }
  }

 private:
  std::shared_ptr<const swarm::SwarmController> controller_;
  swarm::CommModel comm_;
};

sim::MissionSpec test_mission() {
  sim::MissionConfig config;
  config.num_drones = 10;
  return sim::generate_mission(config, 77);
}

sim::SimulationConfig test_config(sim::VehicleType vehicle) {
  sim::SimulationConfig config;
  config.vehicle = vehicle;
  config.gps.noise_stddev = 0.4;  // nonzero so the GPS RNG stream matters
  return config;
}

void expect_bit_identical(const sim::RunResult& optimized,
                          const sim::RunResult& reference) {
  EXPECT_EQ(optimized.collided, reference.collided);
  EXPECT_EQ(optimized.reached_destination, reference.reached_destination);
  EXPECT_EQ(optimized.end_time, reference.end_time);
  ASSERT_EQ(optimized.first_collision.has_value(),
            reference.first_collision.has_value());
  if (optimized.first_collision) {
    EXPECT_EQ(optimized.first_collision->kind, reference.first_collision->kind);
    EXPECT_EQ(optimized.first_collision->time, reference.first_collision->time);
    EXPECT_EQ(optimized.first_collision->drone, reference.first_collision->drone);
    EXPECT_EQ(optimized.first_collision->other, reference.first_collision->other);
  }

  const sim::Recorder& a = optimized.recorder;
  const sim::Recorder& b = reference.recorder;
  EXPECT_EQ(a.duration(), b.duration());
  ASSERT_EQ(a.num_samples(), b.num_samples());
  ASSERT_EQ(a.num_drones(), b.num_drones());
  for (int s = 0; s < a.num_samples(); ++s) {
    EXPECT_EQ(a.times()[static_cast<size_t>(s)], b.times()[static_cast<size_t>(s)]);
    const std::span<const sim::DroneState> sa = a.sample(s);
    const std::span<const sim::DroneState> sb = b.sample(s);
    for (int i = 0; i < a.num_drones(); ++i) {
      const sim::DroneState& da = sa[static_cast<size_t>(i)];
      const sim::DroneState& db = sb[static_cast<size_t>(i)];
      ASSERT_EQ(da.position.x, db.position.x) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.position.y, db.position.y) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.position.z, db.position.z) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.velocity.x, db.velocity.x) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.velocity.y, db.velocity.y) << "sample " << s << " drone " << i;
      ASSERT_EQ(da.velocity.z, db.velocity.z) << "sample " << s << " drone " << i;
    }
  }
  for (int i = 0; i < a.num_drones(); ++i) {
    EXPECT_EQ(a.min_obstacle_distance(i), b.min_obstacle_distance(i)) << i;
    EXPECT_EQ(a.time_of_min_obstacle_distance(i),
              b.time_of_min_obstacle_distance(i))
        << i;
  }
}

void run_equivalence(sim::VehicleType vehicle, const swarm::CommConfig& comm) {
  const sim::MissionSpec mission = test_mission();
  const sim::Simulator simulator(test_config(vehicle));

  swarm::FlockingControlSystem optimized(
      std::make_shared<swarm::VasarhelyiController>(), comm);
  ReferenceControlSystem reference(
      std::make_shared<swarm::VasarhelyiController>(), comm);

  const sim::RunResult a = simulator.run(mission, optimized);
  const sim::RunResult b = simulator.run(mission, reference);
  expect_bit_identical(a, b);
}

constexpr double kInf = std::numeric_limits<double>::infinity();

// RAII save/restore for the process-wide spatial-grid policy.
class GridPolicyScope {
 public:
  GridPolicyScope(bool enabled, int min_drones)
      : saved_(swarm::spatial_grid_policy()) {
    swarm::spatial_grid_policy() = {enabled, min_drones};
  }
  ~GridPolicyScope() { swarm::spatial_grid_policy() = saved_; }

 private:
  swarm::SpatialGridPolicy saved_;
};

// A swarm large enough that spatial culling genuinely prunes work (the
// 50 m default box cannot hold 40 drones at 8 m separation, so widen it).
sim::MissionSpec large_mission() {
  sim::MissionConfig config;
  config.num_drones = 40;
  config.spawn_range = 120.0;
  return sim::generate_mission(config, 91);
}

// The spatial grid claims to be a pure accelerator: every candidate set is
// a conservative superset re-filtered by the exact original test, in the
// original visit order. Hold it to that by running the SAME control system
// over a full mission with the grid forced on and forced off — collision
// events, recorder samples and RNG-dependent packet drops must all agree
// bitwise.
void run_grid_equivalence(std::shared_ptr<const swarm::SwarmController> controller,
                          sim::VehicleType vehicle, const swarm::CommConfig& comm) {
  const sim::MissionSpec mission = large_mission();
  const sim::Simulator simulator(test_config(vehicle));
  swarm::FlockingControlSystem system(std::move(controller), comm);

  sim::RunResult with_grid = [&] {
    const GridPolicyScope scope(true, 2);
    return simulator.run(mission, system);
  }();
  sim::RunResult without = [&] {
    const GridPolicyScope scope(false, 2);
    return simulator.run(mission, system);
  }();
  expect_bit_identical(with_grid, without);
}

TEST(SpatialGridEquivalence, VasarhelyiTrivialComm) {
  run_grid_equivalence(std::make_shared<swarm::VasarhelyiController>(),
                       sim::VehicleType::kPointMass, {});
}

TEST(SpatialGridEquivalence, VasarhelyiRangeLimitedWithDrop) {
  run_grid_equivalence(std::make_shared<swarm::VasarhelyiController>(),
                       sim::VehicleType::kPointMass,
                       {.range = 40.0, .drop_probability = 0.15});
}

TEST(SpatialGridEquivalence, VasarhelyiQuadrotorPacketDrop) {
  run_grid_equivalence(std::make_shared<swarm::VasarhelyiController>(),
                       sim::VehicleType::kQuadrotor,
                       {.range = kInf, .drop_probability = 0.3});
}

TEST(SpatialGridEquivalence, OlfatiSaberTrivialComm) {
  run_grid_equivalence(std::make_shared<swarm::OlfatiSaberController>(),
                       sim::VehicleType::kPointMass, {});
}

TEST(SpatialGridEquivalence, OlfatiSaberRangeLimitedWithDrop) {
  run_grid_equivalence(std::make_shared<swarm::OlfatiSaberController>(),
                       sim::VehicleType::kPointMass,
                       {.range = 40.0, .drop_probability = 0.15});
}

TEST(SimulatorPerfEquivalence, PointMassTrivialComm) {
  run_equivalence(sim::VehicleType::kPointMass, {});
}

TEST(SimulatorPerfEquivalence, PointMassPacketDrop) {
  run_equivalence(sim::VehicleType::kPointMass,
                  {.range = kInf, .drop_probability = 0.3});
}

TEST(SimulatorPerfEquivalence, PointMassRangeLimitedWithDrop) {
  run_equivalence(sim::VehicleType::kPointMass,
                  {.range = 40.0, .drop_probability = 0.15});
}

TEST(SimulatorPerfEquivalence, QuadrotorTrivialComm) {
  run_equivalence(sim::VehicleType::kQuadrotor, {});
}

TEST(SimulatorPerfEquivalence, QuadrotorRangeLimitedWithDrop) {
  run_equivalence(sim::VehicleType::kQuadrotor,
                  {.range = 40.0, .drop_probability = 0.15});
}

TEST(SimulatorPerfEquivalence, SteadyStateControlComputeDoesNotAllocate) {
  const sim::MissionSpec mission = test_mission();
  const int n = mission.num_drones();

  sim::WorldSnapshot snapshot;
  snapshot.time = 1.0;
  snapshot.resize(n);
  for (int i = 0; i < n; ++i) {
    snapshot.id[static_cast<size_t>(i)] = i;
    snapshot.gps_position[static_cast<size_t>(i)] =
        mission.initial_positions[static_cast<size_t>(i)];
    snapshot.velocity[static_cast<size_t>(i)] = sim::Vec3{1.0, 0.5, 0.0};
  }
  std::vector<sim::Vec3> desired(static_cast<size_t>(n));

  swarm::FlockingControlSystem batch(
      std::make_shared<swarm::VasarhelyiController>(), swarm::CommConfig{});
  batch.reset(mission, 123);
  swarm::FlockingControlSystem filtered(
      std::make_shared<swarm::VasarhelyiController>(),
      swarm::CommConfig{.range = 40.0, .drop_probability = 0.1});
  filtered.reset(mission, 9);

  // Warm-up grows every scratch buffer to its steady-state capacity.
  for (int it = 0; it < 8; ++it) {
    batch.compute(snapshot, mission, desired);
    filtered.compute(snapshot, mission, desired);
  }

  const std::uint64_t before = g_allocation_count.load();
  for (int it = 0; it < 200; ++it) {
    batch.compute(snapshot, mission, desired);
    filtered.compute(snapshot, mission, desired);
  }
  EXPECT_EQ(g_allocation_count.load() - before, 0u)
      << "steady-state control loop allocated";
}

TEST(SimulatorPerfEquivalence, SteadyStateGridPathDoesNotAllocate) {
  const GridPolicyScope scope(true, 2);  // force the grid paths for n = 10
  const sim::MissionSpec mission = test_mission();
  const int n = mission.num_drones();

  sim::WorldSnapshot snapshot;
  snapshot.time = 1.0;
  snapshot.resize(n);
  for (int i = 0; i < n; ++i) {
    snapshot.id[static_cast<size_t>(i)] = i;
    snapshot.gps_position[static_cast<size_t>(i)] =
        mission.initial_positions[static_cast<size_t>(i)];
    snapshot.velocity[static_cast<size_t>(i)] = sim::Vec3{1.0, 0.5, 0.0};
  }
  std::vector<sim::Vec3> desired(static_cast<size_t>(n));

  swarm::FlockingControlSystem batch(
      std::make_shared<swarm::VasarhelyiController>(), swarm::CommConfig{});
  batch.reset(mission, 123);
  swarm::FlockingControlSystem filtered(
      std::make_shared<swarm::VasarhelyiController>(),
      swarm::CommConfig{.range = 40.0, .drop_probability = 0.1});
  filtered.reset(mission, 9);

  // Warm-up grows grid buffers and gather scratch to steady-state capacity.
  for (int it = 0; it < 8; ++it) {
    batch.compute(snapshot, mission, desired);
    filtered.compute(snapshot, mission, desired);
  }

  const std::uint64_t before = g_allocation_count.load();
  for (int it = 0; it < 200; ++it) {
    batch.compute(snapshot, mission, desired);
    filtered.compute(snapshot, mission, desired);
  }
  EXPECT_EQ(g_allocation_count.load() - before, 0u)
      << "steady-state grid-accelerated control loop allocated";
}

// The parallel tick path makes the same zero-allocation claim as the serial
// one: after warm-up (which grows every lane's scratch and each persistent
// worker's thread-local context), chunked compute() over a multi-thread
// TickPool performs no heap allocation — the generation handoff itself is
// allocation-free by construction.
TEST(ParallelTickAllocation, SteadyStateThreadedComputeDoesNotAllocate) {
  const GridPolicyScope scope(true, 2);  // force the grid paths for n = 40
  const sim::MissionSpec mission = large_mission();
  const int n = mission.num_drones();

  sim::WorldSnapshot snapshot;
  snapshot.time = 1.0;
  snapshot.resize(n);
  for (int i = 0; i < n; ++i) {
    snapshot.id[static_cast<size_t>(i)] = i;
    snapshot.gps_position[static_cast<size_t>(i)] =
        mission.initial_positions[static_cast<size_t>(i)];
    snapshot.velocity[static_cast<size_t>(i)] = sim::Vec3{1.0, 0.5, 0.0};
  }
  std::vector<sim::Vec3> desired(static_cast<size_t>(n));

  sim::TickPool pool(4);
  swarm::FlockingControlSystem batch(
      std::make_shared<swarm::VasarhelyiController>(), swarm::CommConfig{});
  batch.reset(mission, 123);
  batch.set_tick_pool(&pool);
  // Lossless range-limited comm exercises the parallel filter_at() path.
  swarm::FlockingControlSystem filtered(
      std::make_shared<swarm::VasarhelyiController>(),
      swarm::CommConfig{.range = 40.0, .drop_probability = 0.0});
  filtered.reset(mission, 9);
  filtered.set_tick_pool(&pool);

  for (int it = 0; it < 8; ++it) {
    batch.compute(snapshot, mission, desired);
    filtered.compute(snapshot, mission, desired);
  }

  const std::uint64_t before = g_allocation_count.load();
  for (int it = 0; it < 200; ++it) {
    batch.compute(snapshot, mission, desired);
    filtered.compute(snapshot, mission, desired);
  }
  EXPECT_EQ(g_allocation_count.load() - before, 0u)
      << "steady-state threaded control loop allocated";
}

}  // namespace
