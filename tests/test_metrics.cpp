#include "swarm/metrics.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "swarm/flocking_system.h"

namespace swarmfuzz::swarm {
namespace {

using sim::DroneState;

std::vector<DroneState> states_of(
    std::initializer_list<std::pair<math::Vec3, math::Vec3>> list) {
  std::vector<DroneState> states;
  for (const auto& [p, v] : list) states.push_back({p, v});
  return states;
}

TEST(Metrics, OrderParameterAligned) {
  const auto states = states_of({
      {{0, 0, 0}, {1, 0, 0}},
      {{5, 0, 0}, {2, 0, 0}},
      {{0, 5, 0}, {3, 0, 0}},
  });
  EXPECT_NEAR(order_parameter(states), 1.0, 1e-12);
}

TEST(Metrics, OrderParameterOpposed) {
  const auto states = states_of({
      {{0, 0, 0}, {1, 0, 0}},
      {{5, 0, 0}, {-1, 0, 0}},
  });
  EXPECT_NEAR(order_parameter(states), -1.0, 1e-12);
}

TEST(Metrics, OrderParameterPerpendicularIsZero) {
  const auto states = states_of({
      {{0, 0, 0}, {1, 0, 0}},
      {{5, 0, 0}, {0, 1, 0}},
  });
  EXPECT_NEAR(order_parameter(states), 0.0, 1e-12);
}

TEST(Metrics, OrderParameterIgnoresStationaryDrones) {
  const auto states = states_of({
      {{0, 0, 0}, {1, 0, 0}},
      {{5, 0, 0}, {0, 0, 0}},  // no defined heading
      {{0, 5, 0}, {2, 0, 0}},
  });
  EXPECT_NEAR(order_parameter(states), 1.0, 1e-12);
}

TEST(Metrics, DegenerateSwarms) {
  EXPECT_DOUBLE_EQ(order_parameter({}), 1.0);
  const auto single = states_of({{{1, 2, 3}, {1, 0, 0}}});
  EXPECT_DOUBLE_EQ(order_parameter(single), 1.0);
  const FlockMetrics metrics = flock_metrics(single);
  EXPECT_DOUBLE_EQ(metrics.cohesion_radius, 0.0);
  EXPECT_TRUE(std::isinf(metrics.min_separation));
}

TEST(Metrics, CohesionRadiusAndSeparation) {
  const auto states = states_of({
      {{-3, 0, 0}, {1, 0, 0}},
      {{3, 0, 0}, {1, 0, 0}},
  });
  const FlockMetrics metrics = flock_metrics(states);
  EXPECT_DOUBLE_EQ(metrics.cohesion_radius, 3.0);
  EXPECT_DOUBLE_EQ(metrics.min_separation, 6.0);
  EXPECT_DOUBLE_EQ(metrics.mean_speed, 1.0);
}

TEST(Metrics, VasarhelyiFlockIsOrderedMidMission) {
  // The controller must actually produce a flock: high velocity order and
  // safe separations at cruise (sampled mid-mission, before the obstacle).
  sim::MissionConfig mission_config;
  mission_config.num_drones = 10;
  const sim::MissionSpec mission = sim::generate_mission(mission_config, 1003);
  auto system = make_vasarhelyi_system();
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  config.record_period = 0.0;
  const sim::Simulator simulator(config);
  const sim::RunResult result = simulator.run(mission, *system);
  ASSERT_FALSE(result.collided);

  const int sample = result.recorder.sample_index_at(30.0);
  const auto states = result.recorder.sample(sample);
  const FlockMetrics metrics = flock_metrics(states);
  EXPECT_GT(metrics.order, 0.9);          // aligned cruise
  EXPECT_GT(metrics.min_separation, 2.0); // no near-misses inside the flock
  EXPECT_GT(metrics.mean_speed, 1.5);
  EXPECT_LT(metrics.cohesion_radius, 60.0);
}

}  // namespace
}  // namespace swarmfuzz::swarm
