#include "swarm/vasarhelyi.h"

#include <gtest/gtest.h>

namespace swarmfuzz::swarm {
namespace {

using sim::DroneObservation;

MissionSpec basic_mission() {
  MissionSpec mission;
  mission.initial_positions = {{0, 0, 10}, {10, 0, 10}};
  mission.destination = {200, 0, 10};
  mission.cruise_altitude = 10.0;
  return mission;
}

WorldSnapshot snapshot_of(std::initializer_list<DroneObservation> drones) {
  WorldSnapshot snap;
  for (const DroneObservation& obs : drones) snap.push_back(obs);
  return snap;
}

TEST(BrakingCurve, PiecewiseDefinition) {
  EXPECT_DOUBLE_EQ(braking_curve(-1.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(braking_curve(0.0, 2.0, 3.0), 0.0);
  // Linear branch: r*p <= a/p -> r <= a/p^2 = 2/9.
  EXPECT_DOUBLE_EQ(braking_curve(0.2, 2.0, 3.0), 0.6);
  // Sqrt branch.
  EXPECT_DOUBLE_EQ(braking_curve(5.0, 2.0, 3.0), std::sqrt(2.0 * 2.0 * 5.0 - 4.0 / 9.0));
}

TEST(BrakingCurve, MonotoneNonDecreasing) {
  double prev = 0.0;
  for (double r = 0.0; r < 50.0; r += 0.1) {
    const double d = braking_curve(r, 1.4, 1.2);
    EXPECT_GE(d, prev - 1e-12);
    prev = d;
  }
}

TEST(BrakingCurve, ContinuousAtBranchPoint) {
  const double a = 2.0, p = 3.0;
  const double r_switch = a / (p * p);
  EXPECT_NEAR(braking_curve(r_switch - 1e-9, a, p), braking_curve(r_switch + 1e-9, a, p),
              1e-6);
}

TEST(Vasarhelyi, RejectsInvalidParams) {
  VasarhelyiParams params;
  params.v_flock = 0.0;
  EXPECT_THROW(VasarhelyiController{params}, std::invalid_argument);
  params = {};
  params.a_shill = -1.0;
  EXPECT_THROW(VasarhelyiController{params}, std::invalid_argument);
}

TEST(Vasarhelyi, MigrationPointsToDestinationAtFlockSpeed) {
  const VasarhelyiController controller;
  const MissionSpec mission = basic_mission();
  const auto snap = snapshot_of({{0, {0, 0, 10}, {}}});
  const auto terms = controller.compute_terms(0, snap, mission);
  EXPECT_NEAR(terms.migration.norm(), controller.params().v_flock, 1e-12);
  EXPECT_GT(terms.migration.x, 0.0);
  EXPECT_NEAR(terms.migration.y, 0.0, 1e-12);
}

TEST(Vasarhelyi, RepulsionPushesApartBelowR0) {
  const VasarhelyiController controller;
  const MissionSpec mission = basic_mission();
  const double close = controller.params().r0_rep / 2.0;
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {close, 0, 10}, {}},
  });
  const auto terms = controller.compute_terms(0, snap, mission);
  EXPECT_LT(terms.repulsion.x, 0.0);  // pushed away from the neighbour (-x)
  const auto terms1 = controller.compute_terms(1, snap, mission);
  EXPECT_GT(terms1.repulsion.x, 0.0);  // symmetric
}

TEST(Vasarhelyi, NoRepulsionBeyondR0) {
  const VasarhelyiController controller;
  const MissionSpec mission = basic_mission();
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {controller.params().r0_rep + 1.0, 0, 10}, {}},
  });
  EXPECT_EQ(controller.compute_terms(0, snap, mission).repulsion, Vec3{});
}

TEST(Vasarhelyi, AttractionPullsTowardDistantMember) {
  const VasarhelyiController controller;
  const MissionSpec mission = basic_mission();
  const double far = controller.params().r0_att + 5.0;
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {far, 0, 10}, {}},
  });
  const auto terms = controller.compute_terms(0, snap, mission);
  EXPECT_GT(terms.attraction.x, 0.0);
  EXPECT_LE(terms.attraction.norm(), controller.params().v_att_max + 1e-12);
}

TEST(Vasarhelyi, AttractionOnlyForKNearest) {
  VasarhelyiParams params;
  params.k_att = 1;
  const VasarhelyiController controller(params);
  const MissionSpec mission = basic_mission();
  const double far = params.r0_att + 5.0;
  // Nearest neighbour is close (no attraction); the far one is outside the
  // k=1 topological neighbourhood so it must be ignored.
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {5.0, 0, 10}, {}},
      {2, {far, 0, 10}, {}},
  });
  EXPECT_EQ(controller.compute_terms(0, snap, mission).attraction, Vec3{});
}

TEST(Vasarhelyi, AttractionTotalIsCapped) {
  const VasarhelyiController controller;
  const MissionSpec mission = basic_mission();
  const double far = controller.params().r0_att + 50.0;
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {far, 0, 10}, {}},
      {2, {far, 10, 10}, {}},
      {3, {far, -10, 10}, {}},
  });
  const auto terms = controller.compute_terms(0, snap, mission);
  EXPECT_LE(terms.attraction.norm(), controller.params().v_att_max + 1e-12);
}

TEST(Vasarhelyi, FrictionAlignsWithFastNeighbour) {
  const VasarhelyiController controller;
  const MissionSpec mission = basic_mission();
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {0, 0, 0}},
      {1, {5, 0, 10}, {3, 0, 0}},  // big velocity difference, close by
  });
  const auto terms = controller.compute_terms(0, snap, mission);
  EXPECT_GT(terms.friction.x, 0.0);  // pulled toward the neighbour's velocity
}

TEST(Vasarhelyi, FrictionIsAveragedOverNeighbours) {
  const VasarhelyiController controller;
  const MissionSpec mission = basic_mission();
  // One fast neighbour vs. four identical fast neighbours: the averaged
  // friction term must not scale with the neighbour count.
  const auto one = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {5, 0, 10}, {3, 0, 0}},
  });
  auto many = one;
  many.push_back({2, {5, 1, 10}, {3, 0, 0}});
  many.push_back({3, {5, -1, 10}, {3, 0, 0}});
  many.push_back({4, {5, 2, 10}, {3, 0, 0}});
  const double f_one = controller.compute_terms(0, one, mission).friction.norm();
  const double f_many = controller.compute_terms(0, many, mission).friction.norm();
  EXPECT_LT(f_many, 1.5 * f_one);
}

TEST(Vasarhelyi, ShillPushesAwayFromNearObstacle) {
  const VasarhelyiController controller;
  MissionSpec mission = basic_mission();
  mission.obstacles = sim::ObstacleField({sim::CylinderObstacle{{10, 0, 0}, 3.0}});
  // Drone just left of the obstacle, flying into it.
  const auto snap = snapshot_of({{0, {5, 0, 10}, {2.5, 0, 0}}});
  const auto terms = controller.compute_terms(0, snap, mission);
  EXPECT_LT(terms.shill.x, 0.0);  // pushed away (-x)
}

TEST(Vasarhelyi, ShillNegligibleFarFromObstacle) {
  const VasarhelyiController controller;
  MissionSpec mission = basic_mission();
  mission.obstacles = sim::ObstacleField({sim::CylinderObstacle{{100, 0, 0}, 3.0}});
  const auto snap = snapshot_of({{0, {0, 0, 10}, {2.5, 0, 0}}});
  const auto terms = controller.compute_terms(0, snap, mission);
  EXPECT_LT(terms.shill.norm(), 0.5);
}

TEST(Vasarhelyi, AltitudeHoldCorrectsHeight) {
  const VasarhelyiController controller;
  const MissionSpec mission = basic_mission();
  const auto low = snapshot_of({{0, {0, 0, 5}, {}}});
  EXPECT_GT(controller.compute_terms(0, low, mission).altitude.z, 0.0);
  const auto high = snapshot_of({{0, {0, 0, 15}, {}}});
  EXPECT_LT(controller.compute_terms(0, high, mission).altitude.z, 0.0);
}

TEST(Vasarhelyi, DesiredVelocityClampedToVmax) {
  const VasarhelyiController controller;
  MissionSpec mission = basic_mission();
  mission.obstacles = sim::ObstacleField({sim::CylinderObstacle{{1, 0, 0}, 0.5}});
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {4, 0, 0}},
      {1, {0.5, 0, 10}, {}},
  });
  const Vec3 v = controller.desired_velocity(0, snap, mission);
  EXPECT_LE(v.norm(), controller.params().v_max + 1e-12);
}

TEST(Vasarhelyi, TermsSumToTotal) {
  const VasarhelyiController controller;
  MissionSpec mission = basic_mission();
  mission.obstacles = sim::ObstacleField({sim::CylinderObstacle{{20, 5, 0}, 3.0}});
  const auto snap = snapshot_of({
      {0, {0, 0, 9}, {1, 0, 0}},
      {1, {6, 2, 10}, {2, 1, 0}},
  });
  const auto terms = controller.compute_terms(0, snap, mission);
  const Vec3 total = terms.migration + terms.repulsion + terms.attraction +
                     terms.friction + terms.shill + terms.altitude;
  EXPECT_EQ(terms.total(), total);
  EXPECT_EQ(controller.desired_velocity(0, snap, mission),
            total.clamped(controller.params().v_max));
}

TEST(Vasarhelyi, SelfIndexOutOfRangeThrows) {
  const VasarhelyiController controller;
  const auto snap = snapshot_of({{0, {0, 0, 10}, {}}});
  EXPECT_THROW((void)controller.desired_velocity(1, snap, basic_mission()),
               std::out_of_range);
}

TEST(Vasarhelyi, CoincidentNeighbourFixIsIgnored) {
  const VasarhelyiController controller;
  const auto snap = snapshot_of({
      {0, {3, 3, 10}, {}},
      {1, {3, 3, 10}, {}},  // identical fix: no defined direction
  });
  const auto terms = controller.compute_terms(0, snap, basic_mission());
  EXPECT_EQ(terms.repulsion, Vec3{});
}

}  // namespace
}  // namespace swarmfuzz::swarm
