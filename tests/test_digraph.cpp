#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace swarmfuzz::graph {
namespace {

TEST(Digraph, EmptyGraph) {
  const Digraph g(0);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Digraph, NegativeNodeCountThrows) {
  EXPECT_THROW(Digraph(-1), std::invalid_argument);
}

TEST(Digraph, AddAndQueryEdges) {
  Digraph g(3);
  g.add_edge(0, 1, 0.5);
  g.add_edge(1, 2);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1).value(), 0.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2).value(), 1.0);
  EXPECT_FALSE(g.edge_weight(2, 0).has_value());
}

TEST(Digraph, DuplicateEdgeReplacesWeight) {
  Digraph g(2);
  g.add_edge(0, 1, 0.3);
  g.add_edge(0, 1, 0.9);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1).value(), 0.9);
  // The flat edge list sees the update too.
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 0.9);
}

TEST(Digraph, RejectsSelfLoopsAndBadIds) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, -0.1), std::invalid_argument);
}

TEST(Digraph, Degrees) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 1);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(1), 2);
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.out_degree(2), 0);
}

TEST(Digraph, OutWeightSumsEdgeWeights) {
  Digraph g(3);
  g.add_edge(0, 1, 0.25);
  g.add_edge(0, 2, 0.5);
  EXPECT_DOUBLE_EQ(g.out_weight(0), 0.75);
  EXPECT_DOUBLE_EQ(g.out_weight(1), 0.0);
}

TEST(Digraph, OutEdgesOrderedByInsertion) {
  Digraph g(3);
  g.add_edge(0, 2, 0.1);
  g.add_edge(0, 1, 0.2);
  const auto edges = g.out_edges(0);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].to, 2);
  EXPECT_EQ(edges[1].to, 1);
}

TEST(Digraph, TransposeReversesEdgesAndKeepsWeights) {
  Digraph g(3);
  g.add_edge(0, 1, 0.5);
  g.add_edge(1, 2, 0.7);
  const Digraph t = g.transposed();
  EXPECT_EQ(t.num_nodes(), 3);
  EXPECT_EQ(t.num_edges(), 2);
  EXPECT_TRUE(t.has_edge(1, 0));
  EXPECT_TRUE(t.has_edge(2, 1));
  EXPECT_FALSE(t.has_edge(0, 1));
  EXPECT_DOUBLE_EQ(t.edge_weight(1, 0).value(), 0.5);
}

TEST(Digraph, DoubleTransposeIsIdentity) {
  Digraph g(4);
  g.add_edge(0, 3, 0.2);
  g.add_edge(2, 1, 0.8);
  const Digraph tt = g.transposed().transposed();
  EXPECT_TRUE(tt.has_edge(0, 3));
  EXPECT_TRUE(tt.has_edge(2, 1));
  EXPECT_EQ(tt.num_edges(), g.num_edges());
}

TEST(Digraph, QueryOutOfRangeThrows) {
  const Digraph g(2);
  EXPECT_THROW((void)g.out_edges(2), std::out_of_range);
  EXPECT_THROW((void)g.in_degree(-1), std::out_of_range);
  EXPECT_THROW((void)g.edge_weight(0, 9), std::out_of_range);
}

}  // namespace
}  // namespace swarmfuzz::graph
